//! Regenerates the paper's fig8 output. Options: `--scale <f>` `--pipelines <n>` `--seqs <n>` `--seed <n>`.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    hyppo_bench::figures::fig8::run(&opts);
}
