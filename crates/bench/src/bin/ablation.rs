//! HYPPO design-choice ablation (search order, greedy, equivalences,
//! plan locality, exploration). Options: --scale --pipelines --seed.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    hyppo_bench::figures::ablation::run(&opts);
}
