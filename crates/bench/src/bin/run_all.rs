//! Regenerates every table and figure in sequence.
//! Options: `--scale <f>` `--pipelines <n>` `--seqs <n>` `--seed <n>`.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    let t0 = std::time::Instant::now();
    for (name, f) in [
        ("table1", hyppo_bench::figures::table1::run as fn(&_)),
        ("fig3", hyppo_bench::figures::fig3::run),
        ("fig4", hyppo_bench::figures::fig4::run),
        ("fig5", hyppo_bench::figures::fig5::run),
        ("fig6", hyppo_bench::figures::fig6::run),
        ("fig7", hyppo_bench::figures::fig7::run),
        ("fig8", hyppo_bench::figures::fig8::run),
        ("fig9a", hyppo_bench::figures::fig9a::run),
        ("fig9b", hyppo_bench::figures::fig9b::run),
        ("fig10", hyppo_bench::figures::fig10::run),
        ("ablation", hyppo_bench::figures::ablation::run),
    ] {
        eprintln!("\n===== {name} ({:.0}s elapsed) =====", t0.elapsed().as_secs_f64());
        f(&opts);
    }
    eprintln!("\nall experiments done in {:.0}s", t0.elapsed().as_secs_f64());
}
