//! Regenerates the paper's fig10 output. Options: `--scale <f>` `--pipelines <n>` `--seqs <n>` `--seed <n>`.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    hyppo_bench::figures::fig10::run(&opts);
}
