//! Regenerates the paper's fig9b output. Options: `--scale <f>` `--pipelines <n>` `--seqs <n>` `--seed <n>`.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    hyppo_bench::figures::fig9b::run(&opts);
}
