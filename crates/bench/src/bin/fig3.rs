//! Regenerates the paper's fig3 output. Options: `--scale <f>` `--pipelines <n>` `--seqs <n>` `--seed <n>`.
fn main() {
    let opts = hyppo_bench::setup::parse_cli();
    hyppo_bench::figures::fig3::run(&opts);
}
