//! Experiment harness for the HYPPO reproduction.
//!
//! One runnable binary per paper table/figure lives in `src/bin/`
//! (`table1`, `fig3` … `fig10`, `run_all`); this library holds the shared
//! machinery:
//!
//! - [`setup`] — method factories and default (laptop-scale) workload
//!   sizes, with a `--scale` multiplier mirroring the paper's
//!   `dataset_multiplier`;
//! - [`runner`] — the three evaluation scenarios: iterative pipeline
//!   execution (Scenario 1), artifact/model retrieval (Scenario 2), and
//!   ensemble-based advanced analysis (Scenario 3);
//! - [`report`] — plain-text + TSV table rendering, with the
//!   speedup-vs-NoOptimization annotations the paper's figures carry.

pub mod figures;
pub mod report;
pub mod runner;
pub mod setup;

pub use report::Table;
pub use runner::{Scenario1Config, Scenario1Result, Scenario2Config};
pub use setup::{make_method, ExperimentScale, MethodKind};
