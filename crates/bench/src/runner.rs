//! Scenario drivers (paper §V-B): iterative pipeline execution, artifact
//! and model retrieval, and ensemble-based advanced analysis.

use crate::setup::{make_method, ExperimentScale, MethodKind};
use hyppo_baselines::ArtifactRequest;
use hyppo_core::Hyppo;
use hyppo_ml::TaskType;
use hyppo_pipeline::{ArtifactHandle, ArtifactRole, StepId};
use hyppo_tensor::SeededRng;
use hyppo_workloads::ensemble_wl::generate_ensemble_workload;
use hyppo_workloads::generator::{generate_sequence, PipelineTemplate, SequenceConfig};
use hyppo_workloads::UseCase;

/// Scenario 1 configuration (Figs. 3, 4, 6).
#[derive(Clone, Debug)]
pub struct Scenario1Config {
    /// Use case.
    pub use_case: UseCase,
    /// Total pipelines per sequence.
    pub n_pipelines: usize,
    /// Cumulative-time checkpoints (subset of `1..=n_pipelines`).
    pub checkpoints: Vec<usize>,
    /// Storage budget as a fraction of the dataset size (the paper's `B`).
    pub budget_frac: f64,
    /// Dataset scale.
    pub scale: ExperimentScale,
    /// Base seed.
    pub seed: u64,
    /// Number of sequences to average over (the paper uses 5).
    pub n_sequences: usize,
    /// Methods to run.
    pub methods: Vec<MethodKind>,
}

/// One method's cumulative series.
#[derive(Clone, Debug)]
pub struct MethodSeries {
    /// Display name.
    pub name: String,
    /// Cumulative execution time (s) at each checkpoint, averaged over
    /// sequences.
    pub cet: Vec<f64>,
    /// Price (€) at each checkpoint.
    pub price: Vec<f64>,
    /// Total optimization overhead (s) across the whole run.
    pub optimize_seconds: f64,
}

/// Scenario 1 outcome.
#[derive(Clone, Debug)]
pub struct Scenario1Result {
    /// Checkpoints (pipeline counts).
    pub checkpoints: Vec<usize>,
    /// Per-method series, in the configured method order.
    pub methods: Vec<MethodSeries>,
    /// Storage budget in bytes used for the run.
    pub budget_bytes: u64,
}

/// Run Scenario 1: sequences of iterative pipelines, cold start.
pub fn run_scenario1(cfg: &Scenario1Config) -> Scenario1Result {
    let mut budget_bytes = 0;
    let mut methods: Vec<MethodSeries> = cfg
        .methods
        .iter()
        .map(|_| MethodSeries {
            name: String::new(),
            cet: vec![0.0; cfg.checkpoints.len()],
            price: vec![0.0; cfg.checkpoints.len()],
            optimize_seconds: 0.0,
        })
        .collect();

    for seq in 0..cfg.n_sequences {
        let seed = cfg.seed + seq as u64;
        let dataset = cfg.scale.dataset(cfg.use_case, seed);
        budget_bytes = (dataset.size_bytes() as f64 * cfg.budget_frac) as u64;
        let templates = generate_sequence(&SequenceConfig {
            use_case: cfg.use_case,
            dataset_id: ExperimentScale::dataset_id(cfg.use_case).to_string(),
            n_pipelines: cfg.n_pipelines,
            seed,
        });
        for (mi, &kind) in cfg.methods.iter().enumerate() {
            let mut method = make_method(kind, budget_bytes);
            methods[mi].name = method.name().to_string();
            method.register_dataset(ExperimentScale::dataset_id(cfg.use_case), dataset.clone());
            for (pi, template) in templates.iter().enumerate() {
                let report = method
                    .submit(template.to_spec())
                    .unwrap_or_else(|e| panic!("{} failed on pipeline {pi}: {e}", method.name()));
                methods[mi].optimize_seconds += report.optimize_seconds;
                for (ci, &cp) in cfg.checkpoints.iter().enumerate() {
                    if pi + 1 == cp {
                        methods[mi].cet[ci] += method.cumulative_seconds();
                        methods[mi].price[ci] += method.price();
                    }
                }
            }
        }
    }
    let n = cfg.n_sequences as f64;
    for m in &mut methods {
        for v in m.cet.iter_mut().chain(m.price.iter_mut()) {
            *v /= n;
        }
    }
    Scenario1Result { checkpoints: cfg.checkpoints.clone(), methods, budget_bytes }
}

/// Scenario 2 configuration (Figs. 7, 8).
#[derive(Clone, Debug)]
pub struct Scenario2Config {
    /// Use case.
    pub use_case: UseCase,
    /// Pipelines building the steady-state history (the paper uses 50).
    pub history_pipelines: usize,
    /// Storage budget fraction (0 disables materialization — Fig. 7).
    pub budget_frac: f64,
    /// Dataset scale.
    pub scale: ExperimentScale,
    /// Base seed.
    pub seed: u64,
    /// Request sizes to sweep (number of artifacts per request).
    pub request_sizes: Vec<usize>,
    /// Requests per size (the paper issues 1000).
    pub n_requests: usize,
    /// Restrict requests to fitted models (Fig. 7/8 right panels).
    pub models_only: bool,
    /// Methods to run.
    pub methods: Vec<MethodKind>,
}

/// Scenario 2 outcome: average retrieval time per request, per size.
#[derive(Clone, Debug)]
pub struct Scenario2Result {
    /// Request sizes.
    pub sizes: Vec<usize>,
    /// `(method name, avg retrieval seconds per request at each size)`.
    pub methods: Vec<(String, Vec<f64>)>,
}

/// Pickable artifacts of a template's spec.
fn request_handles(template: &PipelineTemplate, models_only: bool) -> Vec<ArtifactHandle> {
    let spec = template.to_spec();
    let mut out = Vec::new();
    for (i, step) in spec.steps.iter().enumerate() {
        if step.task == TaskType::Load {
            continue; // raw data retrieval is trivial
        }
        if models_only && !(step.task == TaskType::Fit && step.op.is_model()) {
            continue;
        }
        for o in 0..step.n_outputs() {
            out.push(ArtifactHandle { step: StepId(i), output: o });
        }
    }
    out
}

/// Run Scenario 2: steady-state retrieval of artifacts/models.
pub fn run_scenario2(cfg: &Scenario2Config) -> Scenario2Result {
    let dataset = cfg.scale.dataset(cfg.use_case, cfg.seed);
    let budget_bytes = (dataset.size_bytes() as f64 * cfg.budget_frac) as u64;
    let templates = generate_sequence(&SequenceConfig {
        use_case: cfg.use_case,
        dataset_id: ExperimentScale::dataset_id(cfg.use_case).to_string(),
        n_pipelines: cfg.history_pipelines,
        seed: cfg.seed,
    });

    let mut out = Vec::new();
    for &kind in &cfg.methods {
        let mut method = make_method(kind, budget_bytes);
        method.register_dataset(ExperimentScale::dataset_id(cfg.use_case), dataset.clone());
        for t in &templates {
            method.submit(t.to_spec()).expect("history construction failed");
        }
        // Identical request stream for every method.
        let mut rng = SeededRng::new(cfg.seed ^ 0x5eed);
        let mut avgs = Vec::with_capacity(cfg.request_sizes.len());
        for &size in &cfg.request_sizes {
            let mut total = 0.0;
            for _ in 0..cfg.n_requests {
                let mut requests = Vec::with_capacity(size);
                while requests.len() < size {
                    let t = &templates[rng.index(templates.len())];
                    let handles = request_handles(t, cfg.models_only);
                    if handles.is_empty() {
                        continue;
                    }
                    let h = handles[rng.index(handles.len())];
                    requests.push(ArtifactRequest { spec: t.to_spec(), handle: h });
                }
                let report = method.retrieve(&requests).expect("retrieval failed");
                total += report.execution_seconds;
            }
            avgs.push(total / cfg.n_requests as f64);
        }
        out.push((method.name().to_string(), avgs));
    }
    Scenario2Result { sizes: cfg.request_sizes.clone(), methods: out }
}

/// Run Scenario 3 (Fig. 9a): ensemble workloads over a TAXI history.
///
/// Returns `(method name, cumulative seconds for the ensemble batch)` per
/// method and batch size.
pub fn run_scenario3(
    history_pipelines: usize,
    batch_sizes: &[usize],
    scale: ExperimentScale,
    seed: u64,
    methods: &[MethodKind],
    budget_frac: f64,
) -> Vec<(String, Vec<f64>)> {
    let dataset = scale.dataset(UseCase::Taxi, seed);
    let budget_bytes = (dataset.size_bytes() as f64 * budget_frac) as u64;
    let templates = generate_sequence(&SequenceConfig {
        use_case: UseCase::Taxi,
        dataset_id: "taxi".to_string(),
        n_pipelines: history_pipelines,
        seed,
    });
    let max_batch = *batch_sizes.iter().max().unwrap_or(&0);
    let workload = generate_ensemble_workload(&templates, max_batch, seed ^ 0xe5e);

    let mut out = Vec::new();
    for &kind in methods {
        let mut method = make_method(kind, budget_bytes);
        method.register_dataset("taxi", dataset.clone());
        for t in &templates {
            method.submit(t.to_spec()).expect("history construction failed");
        }
        let before = method.cumulative_seconds();
        let mut series = Vec::with_capacity(batch_sizes.len());
        for (i, spec) in workload.iter().enumerate() {
            method.submit(spec.clone()).expect("ensemble pipeline failed");
            if batch_sizes.contains(&(i + 1)) {
                series.push(method.cumulative_seconds() - before);
            }
        }
        out.push((method.name().to_string(), series));
    }
    out
}

/// Per-artifact-role statistics from a HYPPO system (Fig. 5b–d).
/// Returns `(role, total, materialized, avg compute cost, avg size)`.
pub fn artifact_role_stats(sys: &Hyppo) -> Vec<(ArtifactRole, usize, usize, f64, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<ArtifactRole, (usize, usize, f64, f64)> = BTreeMap::new();
    for name in sys.history.artifact_names() {
        let node = sys.history.node_of(name).expect("name enumerated from history");
        let role = sys.history.graph.node(node).role;
        if role == ArtifactRole::Source || role == ArtifactRole::Raw {
            continue;
        }
        let stats = sys.history.stats_of(name);
        let e = acc.entry(role).or_insert((0, 0, 0.0, 0.0));
        e.0 += 1;
        if sys.history.is_materialized(name) {
            e.1 += 1;
        }
        e.2 += stats.compute_cost;
        e.3 += stats.size_bytes as f64;
    }
    acc.into_iter()
        .map(|(role, (n, stored, cost, size))| {
            (role, n, stored, cost / n.max(1) as f64, size / n.max(1) as f64)
        })
        .collect()
}

/// Per-task-type mean execution cost from a HYPPO system's learned
/// statistics (Fig. 5e).
pub fn task_type_costs(sys: &Hyppo) -> Vec<(TaskType, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<TaskType, (f64, u64)> = BTreeMap::new();
    for (key, count, mean) in sys.estimator.stats.iter() {
        let e = acc.entry(key.task).or_insert((0.0, 0));
        e.0 += mean * count as f64;
        e.1 += count;
    }
    acc.into_iter().map(|(t, (sum, n))| (t, sum / n.max(1) as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale { multiplier: 0.05 }
    }

    #[test]
    fn scenario1_produces_monotone_cumulative_series() {
        let cfg = Scenario1Config {
            use_case: UseCase::Higgs,
            n_pipelines: 4,
            checkpoints: vec![2, 4],
            budget_frac: 0.5,
            scale: tiny_scale(),
            seed: 1,
            n_sequences: 1,
            methods: vec![MethodKind::NoOpt, MethodKind::Hyppo],
        };
        let result = run_scenario1(&cfg);
        assert_eq!(result.methods.len(), 2);
        for m in &result.methods {
            assert!(m.cet[0] > 0.0);
            assert!(m.cet[1] >= m.cet[0], "{}: cumulative must grow", m.name);
            assert!(m.price[1] >= m.price[0]);
        }
        assert_eq!(result.methods[0].name, "NoOptimization");
        assert_eq!(result.methods[1].name, "HYPPO");
    }

    #[test]
    fn scenario2_retrieval_runs_for_all_methods() {
        let cfg = Scenario2Config {
            use_case: UseCase::Taxi,
            history_pipelines: 3,
            budget_frac: 0.1,
            scale: tiny_scale(),
            seed: 2,
            request_sizes: vec![1, 2],
            n_requests: 2,
            models_only: false,
            methods: vec![MethodKind::Sharing, MethodKind::Hyppo],
        };
        let result = run_scenario2(&cfg);
        assert_eq!(result.methods.len(), 2);
        for (name, series) in &result.methods {
            assert_eq!(series.len(), 2, "{name}");
            assert!(series.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn scenario3_ensembles_run() {
        let out = run_scenario3(3, &[1, 2], tiny_scale(), 3, &[MethodKind::Hyppo], 1.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), 2);
        assert!(out[0].1[1] >= out[0].1[0]);
    }

    #[test]
    fn request_handles_filter_models() {
        let t = PipelineTemplate::base(UseCase::Higgs, "higgs", 0);
        let all = request_handles(&t, false);
        let models = request_handles(&t, true);
        assert!(all.len() > models.len());
        assert_eq!(models.len(), 1, "exactly the model fit output");
    }
}
