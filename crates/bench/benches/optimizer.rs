//! Plan-search benchmark: (1) the A* fast path (lower bounds + state dedup)
//! vs the paper's plain enumeration, and (2) the K-worker parallel search vs
//! the serial search, on the Fig. 10 synthetic workload.
//!
//! Run under `cargo bench --bench optimizer` for the full measurement,
//! which writes `BENCH_optimizer.json` (per-instance expansions, pops,
//! peak queue size, wall time, cost parity between the two searches, and
//! serial-vs-parallel wall times with plan-identity checks). Without
//! `--bench` in the arguments a tiny workload runs and nothing is written.
//!
//! Parallel speedup is reported, not asserted: it is a property of the
//! hardware (`hardware_threads` records what this host offers), while
//! plan identity is a property of the algorithm and is asserted always.

use hyppo_core::augment::{annotate_costs, augment, AugmentOptions};
use hyppo_core::optimizer::{Plan, PlanRequest, Planner, QueueKind};
use hyppo_core::{
    ArtifactStore, BatchItem, CostEstimator, History, PlannerBounds, PlannerBoundsCache,
};
use hyppo_hypergraph::NodeId;
use hyppo_pipeline::{build_pipeline, Dictionary};
use hyppo_tensor::SeededRng;
use hyppo_workloads::{generate_synthetic, higgs, sweep_specs, SweepConfig, UseCase};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Side {
    expansions: usize,
    pops: usize,
    peak_queue: usize,
    wall_seconds: f64,
    cost: f64,
    optimal: bool,
}

#[derive(Serialize)]
struct Instance {
    n: usize,
    m: usize,
    seed: u64,
    queue: &'static str,
    /// Plain enumeration: `use_bounds = false`, `dedup_states = false` —
    /// bit-identical to the pre-fast-path search.
    baseline: Side,
    /// Default options: admissible bounds + global state dedup.
    fast: Side,
    expansion_ratio: f64,
    cost_match: bool,
}

#[derive(Serialize)]
struct ParallelInstance {
    n: usize,
    m: usize,
    seed: u64,
    threads: usize,
    expansions: usize,
    wall_seconds: f64,
    serial_wall_seconds: f64,
    speedup_vs_serial: f64,
    /// Same edges AND bit-identical cost as the one-thread search.
    plan_identical: bool,
}

#[derive(Serialize)]
struct GrowthStepTiming {
    n: usize,
    /// Live edges before this insertion batch.
    base_edges: usize,
    /// Edges the batch inserted (the repair delta).
    inserted_edges: usize,
    /// Patching the previous bounds forward through the journal delta.
    repair_wall_seconds: f64,
    /// Re-running both relaxations from scratch on the grown graph.
    recompute_wall_seconds: f64,
    speedup: f64,
    /// Repaired tables match the from-scratch tables bit for bit.
    bounds_identical: bool,
}

#[derive(Serialize)]
struct SweepInstance {
    use_case: &'static str,
    /// Number of sweep configurations submitted.
    k: usize,
    /// Distinct planning problems after batch dedup.
    groups: usize,
    /// Items served by cloning another item's plan.
    deduped: usize,
    /// Shared-prefix bound tables computed (once per distinct prefix).
    shared_prefixes: usize,
    /// Groups that reused an already-computed prefix table.
    batch_shared_hits: usize,
    /// Per-leaf journal repairs patching a prefix table forward.
    batch_leaf_repairs: usize,
    /// Total search expansions across K sequential plan calls.
    sequential_expansions: usize,
    /// Total search expansions across the batch (each group searched once).
    batch_expansions: usize,
    /// Full bound relaxation runs (cache misses) in the sequential loop.
    sequential_bounds_computes: usize,
    /// Full bound relaxation runs in the batch path.
    batch_bounds_computes: usize,
    sequential_wall_seconds: f64,
    batch_wall_seconds: f64,
    /// Summed planned cost across the sweep (identical on both paths).
    total_cost: f64,
    /// Every per-pipeline plan bit-identical (edges + IEEE-754 cost bits).
    plans_identical: bool,
    /// Batch used strictly fewer total expansions than sequential.
    fewer_expansions: bool,
    /// Batch ran ≤ half the sequential bound computations.
    bounds_amortized_2x: bool,
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    instances: Vec<Instance>,
    min_expansion_ratio: f64,
    geomean_expansion_ratio: f64,
    total_baseline_wall_seconds: f64,
    total_fast_wall_seconds: f64,
    all_costs_match: bool,
    all_baselines_optimal: bool,
    /// What this host offers — speedups below are bounded by it.
    hardware_threads: usize,
    parallel: Vec<ParallelInstance>,
    all_parallel_plans_identical: bool,
    total_serial_wall_seconds: f64,
    total_parallel_wall_seconds: f64,
    /// Growing-history scenario: per-batch bound repair vs full recompute.
    growing_history: Vec<GrowthStepTiming>,
    total_repair_wall_seconds: f64,
    total_recompute_wall_seconds: f64,
    /// Aggregate recompute/repair wall ratio (reported, not asserted:
    /// wall time is a property of the host).
    repair_speedup: f64,
    all_repaired_bounds_identical: bool,
    /// Tuning-sweep scenario: K-config batch planning vs K sequential
    /// plan calls over the same augmentations.
    sweep: Vec<SweepInstance>,
    all_sweep_plans_identical: bool,
    all_sweep_fewer_expansions: bool,
    all_sweep_bounds_amortized_2x: bool,
}

fn run_side(g: &hyppo_workloads::SyntheticGraph, planner: &Planner, reps: usize) -> (Plan, f64) {
    let mut wall = f64::INFINITY;
    let mut plan = None;
    for _ in 0..reps {
        let start = Instant::now();
        plan = Some(
            planner
                .plan(&g.graph, PlanRequest::new(&g.costs, g.source, &g.targets))
                .expect("synthetic targets are derivable"),
        );
        wall = wall.min(start.elapsed().as_secs_f64());
    }
    (plan.expect("at least one rep"), wall)
}

fn side(plan: &Plan, wall: f64) -> Side {
    Side {
        expansions: plan.expansions,
        pops: plan.pops,
        peak_queue: plan.peak_queue,
        wall_seconds: wall,
        cost: plan.cost,
        optimal: plan.optimal,
    }
}

/// Growing-history scenario: a large synthetic history absorbs small
/// insertion batches (one per "submission"); per batch we time patching the
/// previous SBT solution forward through the journal against recomputing
/// both relaxations from scratch, and assert the tables match bit for bit.
fn bench_growing_history(report: &mut BenchReport, full: bool) {
    let sizes: &[usize] = if full { &[500, 2000, 8000] } else { &[60] };
    let batches = if full { 16 } else { 3 };
    let reps = if full { 5 } else { 1 };
    for &n in sizes {
        let mut inst = generate_synthetic(n, 2, 7);
        let mut rng = SeededRng::new(0x9e0 ^ n as u64);
        // Creation order is a topological order of the synthetic pipeline;
        // drawing tails from strictly earlier nodes keeps the graph a DAG.
        let mut nodes: Vec<NodeId> = inst.graph.node_ids().collect();
        let mut bounds = PlannerBounds::new(&inst.graph, &inst.costs, inst.source);
        for _ in 0..batches {
            let base_edges = inst.graph.edge_bound();
            let n_inserts = 1 + rng.index(4);
            for _ in 0..n_inserts {
                let cost = rng.uniform(1.0, 10.0);
                let pick_tail = |rng: &mut SeededRng, upstream: &[NodeId]| {
                    let n_tail = 1 + rng.index(2.min(upstream.len()));
                    let mut tail: Vec<NodeId> =
                        (0..n_tail).map(|_| upstream[rng.index(upstream.len())]).collect();
                    tail.sort_unstable();
                    tail.dedup();
                    tail
                };
                if rng.index(2) == 0 {
                    // New artifact (a recorded task output) with one producer.
                    let tail = pick_tail(&mut rng, &nodes);
                    let v = inst.graph.add_node(u32::MAX);
                    let e = inst.graph.add_edge(tail, vec![v], 0);
                    inst.costs.resize(e.index() + 1, cost);
                    nodes.push(v);
                } else {
                    // Alternative producer for an existing artifact.
                    let i = 1 + rng.index(nodes.len() - 1);
                    let tail = pick_tail(&mut rng, &nodes[..i]);
                    let e = inst.graph.add_edge(tail, vec![nodes[i]], 0);
                    inst.costs.resize(e.index() + 1, cost);
                }
            }
            let inserted = inst.graph.edge_bound() - base_edges;

            let mut repair_wall = f64::INFINITY;
            let mut repaired = None;
            for _ in 0..reps {
                let start = Instant::now();
                repaired = Some(bounds.repaired(&inst.graph, &inst.costs, base_edges));
                repair_wall = repair_wall.min(start.elapsed().as_secs_f64());
            }
            let repaired = repaired.expect("at least one rep");

            let mut recompute_wall = f64::INFINITY;
            let mut scratch = None;
            for _ in 0..reps {
                let start = Instant::now();
                scratch = Some(PlannerBounds::new(&inst.graph, &inst.costs, inst.source));
                recompute_wall = recompute_wall.min(start.elapsed().as_secs_f64());
            }
            let scratch = scratch.expect("at least one rep");

            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let identical = bits(&repaired.h) == bits(&scratch.h)
                && bits(&repaired.share) == bits(&scratch.share);
            report.all_repaired_bounds_identical &= identical;
            report.total_repair_wall_seconds += repair_wall;
            report.total_recompute_wall_seconds += recompute_wall;
            report.growing_history.push(GrowthStepTiming {
                n,
                base_edges,
                inserted_edges: inserted,
                repair_wall_seconds: repair_wall,
                recompute_wall_seconds: recompute_wall,
                speedup: recompute_wall / repair_wall.max(1e-12),
                bounds_identical: identical,
            });
            bounds = repaired;
        }
        let per_n: Vec<&GrowthStepTiming> =
            report.growing_history.iter().filter(|t| t.n == n).collect();
        let rep: f64 = per_n.iter().map(|t| t.repair_wall_seconds).sum();
        let rec: f64 = per_n.iter().map(|t| t.recompute_wall_seconds).sum();
        println!(
            "optimizer: growing-history n={n}: {} batches, repair {rep:.6}s vs \
             recompute {rec:.6}s ({:.1}x)",
            per_n.len(),
            rec / rep.max(1e-12),
        );
    }
    report.repair_speedup =
        report.total_recompute_wall_seconds / report.total_repair_wall_seconds.max(1e-12);
}

/// Tuning-sweep scenario: K pipeline configs differing only in the model
/// stage, planned sequentially (one `plan()` per config, shared bounds
/// cache) vs jointly (`plan_batch`, its own fresh cache). Plans must be
/// bit-identical; the batch must spend strictly fewer total expansions and
/// at most half the full bound computations.
fn bench_sweep(report: &mut BenchReport, full: bool) {
    let ks: &[usize] = if full { &[32, 64, 128, 256] } else { &[8] };
    let dictionary = Dictionary::full();
    let options = AugmentOptions::default();
    for &k in ks {
        let mut history = History::new();
        let mut store = ArtifactStore::new();
        let estimator = CostEstimator::new();
        let dataset = higgs::generate(400, 7);
        history.record_dataset("higgs", dataset.size_bytes() as u64);
        store.register_dataset("higgs", dataset);
        let specs = sweep_specs(&SweepConfig {
            use_case: UseCase::Higgs,
            dataset_id: "higgs".to_string(),
            k,
            seed: 0,
        });
        let pipelines: Vec<_> = specs.into_iter().map(build_pipeline).collect();
        let augs: Vec<_> =
            pipelines.iter().map(|p| augment(p, &history, &dictionary, options)).collect();
        let costs: Vec<Vec<f64>> =
            augs.iter().map(|a| annotate_costs(a, &estimator, &store)).collect();

        // Sequential submission: one plan call per config.
        let seq_cache = Arc::new(PlannerBoundsCache::new());
        let seq_planner = Planner::exact().threads(1).bounds_cache(Arc::clone(&seq_cache));
        let start = Instant::now();
        let seq_plans: Vec<Plan> = augs
            .iter()
            .zip(&costs)
            .map(|(a, c)| {
                seq_planner
                    .plan(
                        &a.graph,
                        PlanRequest::new(c, a.source, &a.targets).with_new_tasks(&a.new_tasks),
                    )
                    .expect("sweep configs are plannable")
            })
            .collect();
        let sequential_wall_seconds = start.elapsed().as_secs_f64();

        // Batch submission: one joint plan_batch call.
        let batch_cache = Arc::new(PlannerBoundsCache::new());
        let batch_planner = Planner::exact().threads(1).bounds_cache(Arc::clone(&batch_cache));
        let items: Vec<BatchItem<'_, _, _>> = augs
            .iter()
            .zip(&costs)
            .map(|(a, c)| {
                BatchItem::new(
                    &a.graph,
                    PlanRequest::new(c, a.source, &a.targets).with_new_tasks(&a.new_tasks),
                )
            })
            .collect();
        let start = Instant::now();
        let batch = batch_planner.plan_batch(&items);
        let batch_wall_seconds = start.elapsed().as_secs_f64();

        let mut plans_identical = true;
        let mut total_cost = 0.0;
        for (b, q) in batch.plans.iter().zip(&seq_plans) {
            let b = b.as_ref().expect("batch must plan what sequential planned");
            plans_identical &= b.edges == q.edges && b.cost.to_bits() == q.cost.to_bits();
            total_cost += b.cost;
        }
        let sequential_expansions: usize = seq_plans.iter().map(|p| p.expansions).sum();
        let sequential_bounds_computes = seq_cache.misses();
        let batch_bounds_computes = batch_cache.misses();
        let fewer_expansions = batch.stats.search_expansions < sequential_expansions;
        let bounds_amortized_2x = 2 * batch_bounds_computes <= sequential_bounds_computes;
        println!(
            "optimizer: sweep k={k}: {} groups ({} deduped), expansions {} -> {}, \
             bounds computes {} -> {}, wall {sequential_wall_seconds:.4}s -> \
             {batch_wall_seconds:.4}s, plans {}",
            batch.stats.groups,
            batch.stats.deduped,
            sequential_expansions,
            batch.stats.search_expansions,
            sequential_bounds_computes,
            batch_bounds_computes,
            if plans_identical { "identical" } else { "DIVERGED" },
        );
        report.all_sweep_plans_identical &= plans_identical;
        report.all_sweep_fewer_expansions &= fewer_expansions;
        report.all_sweep_bounds_amortized_2x &= bounds_amortized_2x;
        report.sweep.push(SweepInstance {
            use_case: "higgs",
            k,
            groups: batch.stats.groups,
            deduped: batch.stats.deduped,
            shared_prefixes: batch.stats.shared_prefixes,
            batch_shared_hits: batch.stats.shared_hits,
            batch_leaf_repairs: batch.stats.leaf_repairs,
            sequential_expansions,
            batch_expansions: batch.stats.search_expansions,
            sequential_bounds_computes,
            batch_bounds_computes,
            sequential_wall_seconds,
            batch_wall_seconds,
            total_cost,
            plans_identical,
            fewer_expansions,
            bounds_amortized_2x,
        });
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    // (n artifacts, m alternatives) on the Fig. 10 synthetic generator;
    // sizes chosen so the plain enumeration still completes un-truncated.
    let shapes: &[(usize, usize)] = if full {
        &[(20, 2), (24, 2), (28, 2), (32, 2), (36, 2), (16, 4), (14, 5)]
    } else {
        &[(8, 2), (6, 3)]
    };
    let reps = if full { 3 } else { 1 };

    let mut report = BenchReport {
        benchmark: "optimizer_fast_path_and_parallel_search".to_string(),
        instances: Vec::new(),
        min_expansion_ratio: f64::INFINITY,
        geomean_expansion_ratio: 0.0,
        total_baseline_wall_seconds: 0.0,
        total_fast_wall_seconds: 0.0,
        all_costs_match: true,
        all_baselines_optimal: true,
        hardware_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        parallel: Vec::new(),
        all_parallel_plans_identical: true,
        total_serial_wall_seconds: 0.0,
        total_parallel_wall_seconds: 0.0,
        growing_history: Vec::new(),
        total_repair_wall_seconds: 0.0,
        total_recompute_wall_seconds: 0.0,
        repair_speedup: 0.0,
        all_repaired_bounds_identical: true,
        sweep: Vec::new(),
        all_sweep_plans_identical: true,
        all_sweep_fewer_expansions: true,
        all_sweep_bounds_amortized_2x: true,
    };
    let mut log_ratio_sum = 0.0f64;

    for &(n, m) in shapes {
        let seed = 42;
        let g = generate_synthetic(n, m, seed);
        for (label, queue) in [("stack", QueueKind::Stack), ("priority", QueueKind::Priority)] {
            let plain = Planner::exact()
                .threads(1)
                .queue(queue)
                .use_bounds(false)
                .dedup_states(false)
                .max_expansions(40_000_000);
            let fast = Planner::exact().threads(1).queue(queue).max_expansions(40_000_000);
            let (base_plan, base_wall) = run_side(&g, &plain, reps);
            let (fast_plan, fast_wall) = run_side(&g, &fast, reps);

            let ratio = base_plan.expansions as f64 / (fast_plan.expansions.max(1)) as f64;
            let cost_match = (base_plan.cost - fast_plan.cost).abs() < 1e-9;
            println!(
                "optimizer: n={n} m={m} {label}: {} -> {} expansions ({ratio:.1}x), \
                 {base_wall:.4}s -> {fast_wall:.4}s, cost {} ({})",
                base_plan.expansions,
                fast_plan.expansions,
                fast_plan.cost,
                if cost_match { "match" } else { "MISMATCH" },
            );
            report.min_expansion_ratio = report.min_expansion_ratio.min(ratio);
            log_ratio_sum += ratio.ln();
            report.total_baseline_wall_seconds += base_wall;
            report.total_fast_wall_seconds += fast_wall;
            report.all_costs_match &= cost_match;
            report.all_baselines_optimal &= base_plan.optimal;
            report.instances.push(Instance {
                n,
                m,
                seed,
                queue: label,
                baseline: side(&base_plan, base_wall),
                fast: side(&fast_plan, fast_wall),
                expansion_ratio: ratio,
                cost_match,
            });

            // Serial vs parallel on the fast path: the plan must be
            // bit-identical at every worker count; wall time is hardware.
            if queue == QueueKind::Priority {
                let (serial_plan, serial_wall) = (&fast_plan, fast_wall);
                for threads in [2usize, 4] {
                    let planner =
                        Planner::exact().threads(threads).queue(queue).max_expansions(40_000_000);
                    let (par_plan, par_wall) = run_side(&g, &planner, reps);
                    let identical = par_plan.edges == serial_plan.edges
                        && par_plan.cost.to_bits() == serial_plan.cost.to_bits();
                    println!(
                        "optimizer: n={n} m={m} parallel x{threads}: {serial_wall:.4}s -> \
                         {par_wall:.4}s ({:.2}x), plan {}",
                        serial_wall / par_wall.max(1e-12),
                        if identical { "identical" } else { "DIVERGED" },
                    );
                    report.all_parallel_plans_identical &= identical;
                    if threads == 4 {
                        report.total_serial_wall_seconds += serial_wall;
                        report.total_parallel_wall_seconds += par_wall;
                    }
                    report.parallel.push(ParallelInstance {
                        n,
                        m,
                        seed,
                        threads,
                        expansions: par_plan.expansions,
                        wall_seconds: par_wall,
                        serial_wall_seconds: serial_wall,
                        speedup_vs_serial: serial_wall / par_wall.max(1e-12),
                        plan_identical: identical,
                    });
                }
            }
        }
    }
    report.geomean_expansion_ratio = (log_ratio_sum / report.instances.len() as f64).exp();
    println!(
        "optimizer: min ratio {:.1}x, geomean {:.1}x, wall {:.3}s -> {:.3}s, costs match: {}",
        report.min_expansion_ratio,
        report.geomean_expansion_ratio,
        report.total_baseline_wall_seconds,
        report.total_fast_wall_seconds,
        report.all_costs_match,
    );
    println!(
        "optimizer: parallel x4 wall {:.3}s vs serial {:.3}s on {} hardware threads, \
         plans identical: {}",
        report.total_parallel_wall_seconds,
        report.total_serial_wall_seconds,
        report.hardware_threads,
        report.all_parallel_plans_identical,
    );
    bench_growing_history(&mut report, full);
    println!(
        "optimizer: growing-history total repair {:.6}s vs recompute {:.6}s ({:.1}x), \
         bounds identical: {}",
        report.total_repair_wall_seconds,
        report.total_recompute_wall_seconds,
        report.repair_speedup,
        report.all_repaired_bounds_identical,
    );

    bench_sweep(&mut report, full);

    assert!(report.all_costs_match, "fast path must stay exact");
    assert!(report.all_baselines_optimal, "baseline truncated: shrink the instances");
    assert!(report.all_parallel_plans_identical, "parallel search must be bit-identical");
    assert!(report.all_repaired_bounds_identical, "repair must be bit-identical to recompute");
    assert!(report.all_sweep_plans_identical, "batch planning must be bit-identical");
    assert!(report.all_sweep_fewer_expansions, "batch planning must save expansions");
    assert!(report.all_sweep_bounds_amortized_2x, "batch planning must amortize bounds >= 2x");

    if full {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        // Anchor at the workspace root regardless of cargo's bench CWD.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimizer.json");
        std::fs::write(path, json).expect("write BENCH_optimizer.json");
        println!("optimizer: wrote {path}");
    }
}
