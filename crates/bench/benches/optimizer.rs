//! Criterion micro-benchmarks of the plan search (OPTIMIZE stack/priority
//! and the greedy variant) on synthetic augmentations — the kernel behind
//! paper Fig. 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyppo_core::optimizer::{optimize, QueueKind, SearchOptions};
use hyppo_workloads::generate_synthetic;
use std::hint::black_box;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_vs_n_m2");
    group.sample_size(20);
    for n in [8usize, 16, 24] {
        let g = generate_synthetic(n, 2, 42);
        for (label, queue) in [("stack", QueueKind::Stack), ("priority", QueueKind::Priority)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let opts = SearchOptions { queue, ..Default::default() };
                b.iter(|| {
                    optimize(
                        black_box(&g.graph),
                        black_box(&g.costs),
                        g.source,
                        &g.targets,
                        &[],
                        opts,
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            let opts = SearchOptions { greedy: true, ..Default::default() };
            b.iter(|| {
                optimize(black_box(&g.graph), black_box(&g.costs), g.source, &g.targets, &[], opts)
            })
        });
    }
    group.finish();
}

fn bench_vs_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_vs_m_n10");
    group.sample_size(20);
    for m in [2usize, 3, 4] {
        let g = generate_synthetic(10, m, 7);
        group.bench_with_input(BenchmarkId::new("priority", m), &m, |b, _| {
            let opts = SearchOptions { queue: QueueKind::Priority, ..Default::default() };
            b.iter(|| {
                optimize(black_box(&g.graph), black_box(&g.costs), g.source, &g.targets, &[], opts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_m);
criterion_main!(benches);
