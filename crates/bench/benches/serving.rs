//! Traffic benchmark for the serving layer: thousands of simulated users
//! replaying Xin-et-al edit-model sequences through the actor runtime.
//!
//! Run under `cargo bench --bench serving` for the full measurement
//! (1024 users), which writes `BENCH_serving.json`. Without `--bench` in
//! the arguments (e.g. when `cargo test` smoke-runs harness-less bench
//! targets) a tiny population runs and nothing is written.
//!
//! Two scenarios:
//!
//! * **closed_loop** — every user keeps exactly one submission in flight
//!   (submit, wait, edit, resubmit), blocking admission, group-commit WAL
//!   attached. This is the steady-state serving shape; it measures
//!   end-to-end latency percentiles, throughput, snapshot staleness, and
//!   the fsync-per-commit ratio of group commit.
//! * **burst** — every user fires its whole sequence at once against
//!   small mailboxes with `Reject` admission. This is the overload shape;
//!   it measures how many submissions bounded admission sheds.
//!
//! On a 1-core host wall-clock contention numbers are reported, not
//! asserted — the determinism suite (`crates/serve/tests/determinism.rs`)
//! is the correctness gate.

use hyppo_core::executor::ExecMode;
use hyppo_core::HyppoConfig;
use hyppo_persist::{GroupCommitWal, WalWriter};
use hyppo_pipeline::PipelineSpec;
use hyppo_runtime::SharedHyppo;
use hyppo_serve::{
    AdmissionPolicy, Client, ServeConfig, ServeRuntime, SubmissionHandle, TicketStats,
};
use hyppo_workloads::generator::{generate_sequence, SequenceConfig, UseCase};
use hyppo_workloads::{higgs, taxi};
use serde::Serialize;
use std::collections::VecDeque;
use std::time::Instant;

#[derive(Serialize)]
struct LatencyStats {
    p50_seconds: f64,
    p99_seconds: f64,
    mean_seconds: f64,
    max_seconds: f64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        LatencyStats {
            p50_seconds: pick(0.50),
            p99_seconds: pick(0.99),
            mean_seconds: samples.iter().sum::<f64>() / samples.len() as f64,
            max_seconds: *samples.last().unwrap(),
        }
    }
}

#[derive(Serialize)]
struct GroupCommitReport {
    commits: u64,
    fsyncs: u64,
    events: u64,
    fsyncs_per_commit: f64,
}

#[derive(Serialize)]
struct ScenarioReport {
    scenario: String,
    users: usize,
    submissions_per_user: usize,
    workers: usize,
    mailbox_capacity: usize,
    admission: String,
    wall_seconds: f64,
    /// Completed submissions per wall-clock second.
    throughput_per_second: f64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    /// Admitted submissions that resolved with an error (e.g. a planning
    /// failure) — reported, never fatal to the bench.
    failed: u64,
    latency: LatencyStats,
    mailbox_wait_mean_seconds: f64,
    service_mean_seconds: f64,
    /// Snapshot staleness: commits that landed between a submission's
    /// planning snapshot and its own commit.
    epoch_lag_mean: f64,
    epoch_lag_max: u64,
    peak_queue_depth: usize,
    /// `null` for scenarios that run without a WAL.
    group_commit: Option<GroupCommitReport>,
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    /// Wall-clock contention figures are host-bound; on a 1-core host the
    /// interesting signals are the latency distribution shape, admission
    /// shedding, epoch lag, and the fsync ratio.
    host_cpus: usize,
    scenarios: Vec<ScenarioReport>,
}

/// One user's edit-model session: a seeded Xin-et-al sequence over one of
/// the two use cases.
fn user_sequence(user: usize, per_user: usize) -> Vec<PipelineSpec> {
    let use_case = if user.is_multiple_of(2) { UseCase::Taxi } else { UseCase::Higgs };
    let dataset_id = match use_case {
        UseCase::Taxi => "taxi",
        UseCase::Higgs => "higgs",
    };
    generate_sequence(&SequenceConfig {
        use_case,
        dataset_id: dataset_id.to_string(),
        n_pipelines: per_user,
        seed: user as u64,
    })
    .iter()
    .map(|t| t.to_spec())
    .collect()
}

fn fresh_runtime(config: ServeConfig) -> ServeRuntime {
    // Greedy search: after thousands of commits the shared history makes
    // the augmented graph large enough that exact search exhausts its
    // expansion budget — greedy is the planner a high-traffic server
    // would run. The budget is generous because under tight budgets the
    // augmenter can strand artifacts after eviction (tracked in
    // ROADMAP.md); submission failures are counted, not fatal.
    let backend = SharedHyppo::new(HyppoConfig {
        budget_bytes: 1 << 30,
        mode: ExecMode::Simulated,
        search: hyppo_core::Planner::greedy(),
        ..Default::default()
    });
    backend.register_dataset("taxi", taxi::generate(150, 5));
    backend.register_dataset("higgs", higgs::generate(150, 5));
    ServeRuntime::new(backend, config)
}

fn record(stats: &TicketStats, latencies: &mut Vec<f64>, waits: &mut f64, service: &mut f64) {
    latencies.push(stats.latency_seconds);
    *waits += stats.mailbox_wait_seconds;
    *service += stats.service_seconds;
}

/// Closed loop: one outstanding submission per user, driven by a polling
/// sweep so 1024 users do not need 1024 blocked threads.
fn closed_loop(users: usize, per_user: usize, workers: usize) -> ScenarioReport {
    let config = ServeConfig { workers, plan_workers: 1, ..ServeConfig::default() };
    let mailbox_capacity = config.mailbox_capacity;
    let commit_group = config.commit_group;
    let runtime = fresh_runtime(config);

    // Group-commit WAL on a scratch file: the bench reports the fsync
    // amortization ratio the serving layer achieves.
    let wal_path = std::env::temp_dir().join("hyppo_bench_serving.wal");
    let _ = std::fs::remove_file(&wal_path);
    let (writer, _) = WalWriter::open(&wal_path).expect("open bench WAL");
    let wal = GroupCommitWal::new(writer);
    runtime.attach_durability(wal.clone());

    struct User {
        client: Client,
        specs: VecDeque<PipelineSpec>,
        outstanding: Option<SubmissionHandle>,
    }
    let mut population: Vec<User> = (0..users)
        .map(|u| User {
            client: runtime.client(),
            specs: user_sequence(u, per_user).into(),
            outstanding: None,
        })
        .collect();

    let total = users * per_user;
    let mut latencies = Vec::with_capacity(total);
    let (mut waits, mut service) = (0.0, 0.0);
    let mut done = 0usize;
    let mut failed = 0u64;
    let start = Instant::now();
    while done < total {
        let mut progressed = false;
        for user in population.iter_mut() {
            let finished = user.outstanding.as_ref().is_some_and(|h| h.try_report().is_some());
            if finished {
                let handle = user.outstanding.take().unwrap();
                match handle.wait_completed() {
                    Ok(completed) => {
                        record(&completed.stats, &mut latencies, &mut waits, &mut service)
                    }
                    Err(_) => failed += 1,
                }
                done += 1;
                progressed = true;
            }
            if user.outstanding.is_none() {
                if let Some(spec) = user.specs.pop_front() {
                    user.outstanding =
                        Some(user.client.submit(spec).expect("blocking admission never rejects"));
                    progressed = true;
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let metrics = runtime.metrics();
    let backend = runtime.shutdown().expect("shutdown flushes the WAL");
    let commits = backend.current_epoch() - 2; // minus the two dataset registrations
    let stats = wal.stats();
    ScenarioReport {
        scenario: "closed_loop".to_string(),
        users,
        submissions_per_user: per_user,
        workers,
        mailbox_capacity,
        admission: "block".to_string(),
        wall_seconds: wall,
        throughput_per_second: metrics.completed as f64 / wall,
        submitted: metrics.submitted,
        completed: metrics.completed,
        rejected: metrics.rejected,
        failed,
        mailbox_wait_mean_seconds: waits / latencies.len().max(1) as f64,
        service_mean_seconds: service / latencies.len().max(1) as f64,
        latency: LatencyStats::from_samples(latencies),
        epoch_lag_mean: metrics.epoch_lag_mean,
        epoch_lag_max: metrics.epoch_lag_max,
        peak_queue_depth: metrics.peak_queue_depth,
        group_commit: Some(GroupCommitReport {
            commits,
            fsyncs: stats.fsyncs,
            events: stats.events,
            fsyncs_per_commit: if commits == 0 {
                0.0
            } else {
                stats.fsyncs as f64 / commits as f64
            },
        }),
    }
    .tap_report(commit_group)
}

impl ScenarioReport {
    fn tap_report(self, commit_group: usize) -> Self {
        println!(
            "serving[{}]: {} users x {} subs, wall {:.3}s, {:.0}/s, p50 {:.4}s p99 {:.4}s, \
             lag mean {:.2} max {}, rejected {} failed {}{}",
            self.scenario,
            self.users,
            self.submissions_per_user,
            self.wall_seconds,
            self.throughput_per_second,
            self.latency.p50_seconds,
            self.latency.p99_seconds,
            self.epoch_lag_mean,
            self.epoch_lag_max,
            self.rejected,
            self.failed,
            match &self.group_commit {
                Some(g) =>
                    format!(", {:.2} fsyncs/commit (group {})", g.fsyncs_per_commit, commit_group),
                None => String::new(),
            }
        );
        self
    }
}

/// Burst: every user fires its whole sequence up front against small
/// `Reject` mailboxes; admission sheds the overload.
fn burst(users: usize, per_user: usize, workers: usize) -> ScenarioReport {
    let mailbox_capacity = 2;
    let runtime = fresh_runtime(ServeConfig {
        workers,
        plan_workers: 1,
        mailbox_capacity,
        admission: AdmissionPolicy::Reject,
        ..ServeConfig::default()
    });

    let clients: Vec<Client> = (0..users).map(|_| runtime.client()).collect();
    let mut sequences: Vec<VecDeque<PipelineSpec>> =
        (0..users).map(|u| user_sequence(u, per_user).into()).collect();

    let mut handles: Vec<SubmissionHandle> = Vec::with_capacity(users * per_user);
    let mut rejected_here = 0u64;
    let start = Instant::now();
    // Round-robin across users so every tenant's burst interleaves.
    for _ in 0..per_user {
        for (client, specs) in clients.iter().zip(sequences.iter_mut()) {
            if let Some(spec) = specs.pop_front() {
                match client.submit(spec) {
                    Ok(handle) => handles.push(handle),
                    Err(hyppo_serve::ServeError::Busy) => rejected_here += 1,
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            }
        }
    }
    let mut latencies = Vec::with_capacity(handles.len());
    let (mut waits, mut service) = (0.0, 0.0);
    let mut failed = 0u64;
    for handle in handles {
        match handle.wait_completed() {
            Ok(completed) => record(&completed.stats, &mut latencies, &mut waits, &mut service),
            Err(_) => failed += 1,
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let metrics = runtime.metrics();
    runtime.shutdown().expect("shutdown without durability");
    let completed = metrics.completed;
    ScenarioReport {
        scenario: "burst".to_string(),
        users,
        submissions_per_user: per_user,
        workers,
        mailbox_capacity,
        admission: "reject".to_string(),
        wall_seconds: wall,
        throughput_per_second: completed as f64 / wall,
        submitted: metrics.submitted,
        completed,
        rejected: rejected_here.max(metrics.rejected),
        failed,
        mailbox_wait_mean_seconds: waits / latencies.len().max(1) as f64,
        service_mean_seconds: service / latencies.len().max(1) as f64,
        latency: LatencyStats::from_samples(latencies),
        epoch_lag_mean: metrics.epoch_lag_mean,
        epoch_lag_max: metrics.epoch_lag_max,
        peak_queue_depth: metrics.peak_queue_depth,
        group_commit: None,
    }
    .tap_report(0)
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let (users, per_user, workers) = if full { (1024, 3, 4) } else { (16, 2, 2) };

    let report = BenchReport {
        benchmark: "serving_traffic".to_string(),
        host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        scenarios: vec![closed_loop(users, per_user, workers), burst(users, per_user, workers)],
    };

    if full {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        // Anchor at the workspace root regardless of cargo's bench CWD.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
        std::fs::write(path, json).expect("write BENCH_serving.json");
        println!("serving: wrote {path}");
    }
}
