//! Durability-layer measurements: WAL append throughput, recovery wall
//! time as the history grows, and cold-vs-warm artifact loads from the
//! disk-backed store.
//!
//! Run under `cargo bench --bench persist` for the full measurement, which
//! writes `BENCH_persist.json` (schema documented in EXPERIMENTS.md).
//! Without `--bench` in the arguments a tiny smoke workload runs and
//! nothing is written.

use bytes::Bytes;
use hyppo_core::HyppoConfig;
use hyppo_ml::{Config, LogicalOp};
use hyppo_persist::{read_wal, DiskArtifactStorage, DurableHyppo, WalWriter};
use hyppo_pipeline::{ArtifactName, PipelineSpec};
use hyppo_tensor::{Dataset, Matrix, SeededRng, TaskKind};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

#[derive(Serialize)]
struct WalAppend {
    batches: usize,
    events: usize,
    bytes: u64,
    wall_seconds: f64,
    events_per_second: f64,
    mib_per_second: f64,
}

#[derive(Serialize)]
struct RecoveryPoint {
    wal_events: usize,
    wal_bytes: u64,
    artifacts: usize,
    wall_seconds: f64,
}

#[derive(Serialize)]
struct ArtifactLoad {
    artifacts: usize,
    payload_bytes: u64,
    cold_wall_seconds: f64,
    warm_wall_seconds: f64,
    warm_speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    wal_append: WalAppend,
    recovery: Vec<RecoveryPoint>,
    artifact_load: ArtifactLoad,
}

fn dataset(rows: usize) -> Dataset {
    let mut rng = SeededRng::new(7);
    let cols = 4;
    let mut x = Matrix::zeros(rows, cols);
    let mut y = Vec::with_capacity(rows);
    for r in 0..rows {
        for c in 0..cols {
            x.set(r, c, rng.uniform(-1.0, 1.0));
        }
        y.push(if x.get(r, 0) + x.get(r, 3) > 0.0 { 1.0 } else { 0.0 });
    }
    Dataset::new(x, y, (0..cols).map(|i| format!("f{i}")).collect(), TaskKind::Classification)
}

fn spec(seed: i64) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    let d = spec.load("data");
    let (train, test) = spec.split(d, Config::new().with_i("seed", seed));
    let scaler = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
    let train_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, train);
    let test_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, test);
    let model = spec.fit(LogicalOp::LinearSvm, 0, Config::new(), &[train_s]);
    let preds = spec.predict(LogicalOp::LinearSvm, 0, Config::new(), model, test_s);
    spec.evaluate(LogicalOp::Accuracy, preds, test_s);
    spec
}

fn config() -> HyppoConfig {
    HyppoConfig { budget_bytes: 256 * 1024 * 1024, ..Default::default() }
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hyppo_bench_persist_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Grow a durable session until its WAL holds at least `min_events`.
fn grow_session(dir: &Path, min_events: usize) -> usize {
    let (mut session, _) = DurableHyppo::open(dir, config()).expect("open session");
    session.register_dataset("data", dataset(120));
    let mut seed = 0i64;
    loop {
        session.submit(spec(seed)).expect("submit");
        seed += 1;
        let events = read_wal(&dir.join("wal.log")).expect("read wal").events.len();
        if events >= min_events {
            return events;
        }
    }
}

fn measure_wal_append(sample_dir: &Path, batches: usize) -> WalAppend {
    // Re-append a realistic event stream (harvested from a real session)
    // batch by batch, one fsync per batch — the exact write pattern a
    // submission produces.
    let events = read_wal(&sample_dir.join("wal.log")).expect("read wal").events;
    assert!(!events.is_empty(), "sample session produced no events");
    let dir = scratch("wal_append");
    std::fs::create_dir_all(&dir).expect("create scratch");
    let (mut writer, _) = WalWriter::open(&dir.join("wal.log")).expect("open wal");
    let start = Instant::now();
    for _ in 0..batches {
        writer.append(&events).expect("append");
    }
    let wall = start.elapsed().as_secs_f64();
    let bytes = writer.len_bytes();
    let total_events = batches * events.len();
    let _ = std::fs::remove_dir_all(&dir);
    WalAppend {
        batches,
        events: total_events,
        bytes,
        wall_seconds: wall,
        events_per_second: total_events as f64 / wall.max(1e-12),
        mib_per_second: bytes as f64 / (1024.0 * 1024.0) / wall.max(1e-12),
    }
}

fn measure_recovery(min_events: usize) -> RecoveryPoint {
    let dir = scratch(&format!("recovery_{min_events}"));
    let wal_events = grow_session(&dir, min_events);
    let wal_bytes = std::fs::metadata(dir.join("wal.log")).expect("wal metadata").len();
    let start = Instant::now();
    let (session, report) = DurableHyppo::open(&dir, config()).expect("recover");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.replayed_events, wal_events);
    let artifacts = report.artifacts_loaded;
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryPoint { wal_events, wal_bytes, artifacts, wall_seconds: wall }
}

fn measure_artifact_load(artifacts: usize, payload_len: usize) -> ArtifactLoad {
    let dir = scratch("artifact_load");
    std::fs::create_dir_all(&dir).expect("create scratch");
    let mut store = DiskArtifactStorage::open(&dir, 0).expect("open store");
    let mut rng = SeededRng::new(41);
    let names: Vec<ArtifactName> = (0..artifacts)
        .map(|i| {
            let name = ArtifactName(0x9000_0000_0000_0000u64 + i as u64);
            let payload: Vec<u8> =
                (0..payload_len).map(|_| rng.uniform(0.0, 255.0) as u8).collect();
            store.put_raw(name, &Bytes::from(payload)).expect("put");
            name
        })
        .collect();

    store.clear_cache();
    let start = Instant::now();
    let mut total = 0u64;
    for &name in &names {
        total += store.raw(name).expect("cold read").expect("present").len() as u64;
    }
    let cold = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for &name in &names {
        total += store.raw(name).expect("warm read").expect("present").len() as u64;
    }
    let warm = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactLoad {
        artifacts,
        payload_bytes: total / 2,
        cold_wall_seconds: cold,
        warm_wall_seconds: warm,
        warm_speedup: cold / warm.max(1e-12),
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let (append_batches, recovery_sizes, load_artifacts, load_len): (
        usize,
        Vec<usize>,
        usize,
        usize,
    ) = if full {
        (200, vec![100, 1000, 5000], 64, 256 * 1024)
    } else {
        (3, vec![30], 4, 4 * 1024)
    };

    // One small real session supplies a representative event stream for
    // the append measurement.
    let sample_dir = scratch("sample");
    grow_session(&sample_dir, 20);

    let wal_append = measure_wal_append(&sample_dir, append_batches);
    println!(
        "persist: wal append {} events in {:.3}s ({:.0} events/s, {:.1} MiB/s)",
        wal_append.events,
        wal_append.wall_seconds,
        wal_append.events_per_second,
        wal_append.mib_per_second
    );
    let _ = std::fs::remove_dir_all(&sample_dir);

    let mut recovery = Vec::new();
    for size in recovery_sizes {
        let point = measure_recovery(size);
        println!(
            "persist: recovery of {} events / {} artifacts in {:.4}s",
            point.wal_events, point.artifacts, point.wall_seconds
        );
        recovery.push(point);
    }

    let artifact_load = measure_artifact_load(load_artifacts, load_len);
    println!(
        "persist: {} artifacts cold {:.4}s warm {:.4}s ({:.1}x)",
        artifact_load.artifacts,
        artifact_load.cold_wall_seconds,
        artifact_load.warm_wall_seconds,
        artifact_load.warm_speedup
    );

    if full {
        let report = BenchReport {
            benchmark: "persist_durability".to_string(),
            wal_append,
            recovery,
            artifact_load,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        // Anchor at the workspace root regardless of cargo's bench CWD.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
        std::fs::write(path, json).expect("write BENCH_persist.json");
        println!("persist: wrote {path}");
    }
}
