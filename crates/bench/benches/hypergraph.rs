//! Criterion micro-benchmarks of the hypergraph substrate: B-closure,
//! plan validation, and execution ordering on synthetic graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyppo_hypergraph::{b_closure, connectivity, execution_order, minimize_plan};
use hyppo_workloads::generate_synthetic;
use std::hint::black_box;

fn bench_b_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("b_closure");
    for n in [50usize, 200, 800] {
        let g = generate_synthetic(n, 2, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| b_closure(black_box(&g.graph), &[g.source]))
        });
    }
    group.finish();
}

fn bench_backward_relevant(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_relevant");
    for n in [50usize, 200, 800] {
        let g = generate_synthetic(n, 2, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| connectivity::backward_relevant(black_box(&g.graph), &g.targets))
        });
    }
    group.finish();
}

fn bench_plan_machinery(c: &mut Criterion) {
    let g = generate_synthetic(60, 2, 17);
    let all: Vec<_> = g.graph.edge_ids().collect();
    let plan = minimize_plan(&g.graph, &all, &[g.source], &g.targets);
    c.bench_function("execution_order_60", |b| {
        b.iter(|| execution_order(black_box(&g.graph), &plan, &[g.source]).unwrap())
    });
    c.bench_function("minimize_plan_60", |b| {
        b.iter(|| minimize_plan(black_box(&g.graph), &all, &[g.source], &g.targets))
    });
}

criterion_group!(benches, bench_b_closure, bench_backward_relevant, bench_plan_machinery);
criterion_main!(benches);
