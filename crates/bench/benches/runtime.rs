//! Serial vs wavefront-parallel plan execution on a wide ensemble plan.
//!
//! Run under `cargo bench --bench runtime` for the full measurement, which
//! writes `BENCH_runtime.json` (wall-clock and speedup per worker count).
//! Without `--bench` in the arguments (e.g. when `cargo test` smoke-runs
//! harness-less bench targets) a tiny workload runs and nothing is
//! written.

use hyppo_core::augment::{augment, AugmentOptions};
use hyppo_core::executor::ExecMode;
use hyppo_core::{execute_plan, ArtifactStore, History};
use hyppo_hypergraph::EdgeId;
use hyppo_ml::{Config, LogicalOp};
use hyppo_pipeline::{build_pipeline, Dictionary, PipelineSpec};
use hyppo_runtime::execute_plan_parallel;
use hyppo_workloads::ensemble_wl::{ensemble_spec, wide_ensemble_spec};
use hyppo_workloads::generator::{PipelineTemplate, UseCase};
use hyppo_workloads::taxi;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkerResult {
    workers: usize,
    wall_seconds: f64,
    peak_concurrency: usize,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    /// Wall-clock speedup is bounded by this; on a single-core host the
    /// interesting signal is `peak_concurrency` (exposed parallelism).
    host_cpus: usize,
    dataset_rows: usize,
    ensemble_members: usize,
    plan_edges: usize,
    serial_wall_seconds: f64,
    parallel: Vec<WorkerResult>,
}

/// Wide voting ensemble whose members are random forests: the member fits
/// dominate the shared preprocessing prefix, so the fan-out is where the
/// time goes — the shape the wavefront executor is built for.
fn heavy_wide_spec(members: usize) -> PipelineSpec {
    let templates: Vec<PipelineTemplate> = (0..members)
        .map(|i| {
            let mut t = PipelineTemplate::base(UseCase::Taxi, "taxi", 0);
            let cfg =
                Config::new().with_i("n_trees", 25).with_i("max_depth", 8).with_i("seed", i as i64);
            t.model = (LogicalOp::RandomForest, cfg, 0);
            t
        })
        .collect();
    ensemble_spec(&templates, LogicalOp::Voting)
}

fn fixture(
    rows: usize,
    members: usize,
    heavy: bool,
) -> (hyppo_core::augment::Augmentation, ArtifactStore, Vec<EdgeId>) {
    let spec =
        if heavy { heavy_wide_spec(members) } else { wide_ensemble_spec("taxi", members, 42) };
    let pipeline = build_pipeline(spec);
    let opts = AugmentOptions { dictionary_alternatives: false, use_history: false };
    let aug = augment(&pipeline, &History::new(), &Dictionary::full(), opts);
    let mut store = ArtifactStore::new();
    store.register_dataset("taxi", taxi::generate(rows, 5));
    let plan = aug.graph.edge_ids().collect();
    (aug, store, plan)
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let (rows, members, reps) = if full { (4000, 8, 3) } else { (150, 3, 1) };
    let (aug, store, plan) = fixture(rows, members, full);
    let costs = vec![0.0; aug.graph.edge_bound()];

    // Serial baseline: best of `reps` runs of the core executor.
    let mut serial_wall = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        execute_plan(&aug, &plan, &store, ExecMode::Real, &costs).expect("serial run failed");
        serial_wall = serial_wall.min(start.elapsed().as_secs_f64());
    }
    println!("runtime: {} edges, serial {:.3}s", plan.len(), serial_wall);

    let mut report = BenchReport {
        benchmark: "wavefront_vs_serial".to_string(),
        host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        dataset_rows: rows,
        ensemble_members: members,
        plan_edges: plan.len(),
        serial_wall_seconds: serial_wall,
        parallel: Vec::new(),
    };
    for workers in [1usize, 2, 4, 8] {
        let mut wall = f64::INFINITY;
        let mut peak = 0;
        for _ in 0..reps {
            let start = Instant::now();
            let out =
                execute_plan_parallel(&aug, &plan, &store, workers).expect("parallel run failed");
            wall = wall.min(start.elapsed().as_secs_f64());
            peak = peak.max(out.metrics.peak_concurrency);
        }
        let speedup = serial_wall / wall;
        println!("runtime: {workers} workers {wall:.3}s (peak {peak}, {speedup:.2}x)");
        report.parallel.push(WorkerResult {
            workers,
            wall_seconds: wall,
            peak_concurrency: peak,
            speedup_vs_serial: speedup,
        });
    }

    if full {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        // Anchor at the workspace root regardless of cargo's bench CWD.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
        std::fs::write(path, json).expect("write BENCH_runtime.json");
        println!("runtime: wrote {path}");
    }
}
