//! Criterion micro-benchmarks of the physical-implementation cost
//! asymmetries the equivalence optimizer exploits: each pair fits the same
//! logical operator two ways on identical data.

use criterion::{criterion_group, criterion_main, Criterion};
use hyppo_ml::{execute, Artifact, Config, LogicalOp, TaskType};
use hyppo_workloads::higgs;
use std::hint::black_box;

fn imputed_higgs(rows: usize) -> Artifact {
    let raw = Artifact::Data(higgs::generate(rows, 5));
    let cfg = Config::new();
    let imp = &execute(LogicalOp::ImputerMean, TaskType::Fit, 0, &cfg, &[&raw]).unwrap()[0];
    execute(LogicalOp::ImputerMean, TaskType::Transform, 0, &cfg, &[imp, &raw]).unwrap().remove(0)
}

fn bench_pairs(c: &mut Criterion) {
    let data = imputed_higgs(2000);
    let cfg = Config::new()
        .with_i("n_trees", 10)
        .with_i("n_rounds", 10)
        .with_i("n_components", 5)
        .with_i("seed", 3);
    for op in [
        LogicalOp::StandardScaler,
        LogicalOp::RobustScaler,
        LogicalOp::Pca,
        LogicalOp::RandomForest,
        LogicalOp::GradientBoosting,
    ] {
        let mut group = c.benchmark_group(format!("{}_fit", op.name()));
        group.sample_size(10);
        for imp in op.impls() {
            group.bench_function(imp.name, |b| {
                b.iter(|| execute(op, TaskType::Fit, imp.index, &cfg, &[black_box(&data)]).unwrap())
            });
        }
        group.finish();
    }
}

fn bench_codec(c: &mut Criterion) {
    let data = imputed_higgs(2000);
    c.bench_function("codec_encode_2000x30", |b| {
        b.iter(|| hyppo_core::codec::encode(black_box(&data)))
    });
    let bytes = hyppo_core::codec::encode(&data);
    c.bench_function("codec_decode_2000x30", |b| {
        b.iter(|| hyppo_core::codec::decode(black_box(&bytes)).unwrap())
    });
}

criterion_group!(benches, bench_pairs, bench_codec);
criterion_main!(benches);
