//! Work-stealing scheduler spawn/drain throughput and contention profile.
//!
//! Run under `cargo bench --bench sched` for the full measurement, which
//! writes `BENCH_sched.json` (tasks/second plus the full `SchedStats`
//! counter set per worker count × deque capacity). Without `--bench` in
//! the arguments (e.g. when `cargo test` smoke-runs harness-less bench
//! targets) a tiny tree runs and nothing is written.
//!
//! The container pins one core, so wall-clock speedup is not the signal
//! here — the numbers that matter are the *contention counters*: how much
//! work moved over the lock-free local-pop path versus the injector and
//! sibling steals, and how often deques spilled. The two-slot capacity row
//! deliberately recreates the steal-heavy schedule the determinism suite
//! (`tests/sched_determinism.rs`) asserts bit-identity under; these
//! numbers are reported, never asserted (DESIGN.md §16).

use hyppo_sched::{SchedStats, Scheduler, DEFAULT_DEQUE_CAPACITY};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

#[derive(Serialize)]
struct StatsOut {
    spawned: u64,
    injected: u64,
    completed: u64,
    local_pops: u64,
    injector_claims: u64,
    steals: u64,
    steal_batches: u64,
    empty_scans: u64,
    spills: u64,
    parks: u64,
}

impl From<SchedStats> for StatsOut {
    fn from(s: SchedStats) -> Self {
        StatsOut {
            spawned: s.spawned,
            injected: s.injected,
            completed: s.completed,
            local_pops: s.local_pops,
            injector_claims: s.injector_claims,
            steals: s.steals,
            steal_batches: s.steal_batches,
            empty_scans: s.empty_scans,
            spills: s.spills,
            parks: s.parks,
        }
    }
}

#[derive(Serialize)]
struct RunResult {
    workers: usize,
    deque_capacity: usize,
    wall_seconds: f64,
    tasks_per_second: f64,
    /// Fraction of claims served by the owner's own deque (no shared state).
    local_claim_fraction: f64,
    stats: StatsOut,
}

#[derive(Serialize)]
struct BenchReport {
    benchmark: String,
    host_cpus: usize,
    fanout: usize,
    depth: usize,
    tasks_per_run: u64,
    runs: Vec<RunResult>,
}

/// One task: remaining depth. Each task at depth > 0 spawns `fanout`
/// children, so a seed at depth `d` drains exactly
/// `(fanout^(d+1) - 1) / (fanout - 1)` tasks.
fn drain_tree(sched: &Scheduler<u32>, fanout: usize, checksum: &AtomicU64) {
    sched.run_scoped(|mut w| {
        while let Some(depth) = w.next() {
            if depth > 0 {
                for _ in 0..fanout {
                    w.spawn(depth - 1);
                }
            }
            // A touch of real work per task so claims do not degenerate
            // into pure counter traffic.
            checksum.fetch_add(u64::from(depth) + 1, Ordering::Relaxed);
        }
    });
}

fn tree_size(fanout: u64, depth: u32) -> u64 {
    (fanout.pow(depth + 1) - 1) / (fanout - 1)
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");
    let (fanout, depth, reps) = if full { (4usize, 8u32, 3) } else { (3, 3, 1) };
    let expected = tree_size(fanout as u64, depth);

    let mut report = BenchReport {
        benchmark: "work_stealing_scheduler".to_string(),
        host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        fanout,
        depth: depth as usize,
        tasks_per_run: expected,
        runs: Vec::new(),
    };

    for capacity in [DEFAULT_DEQUE_CAPACITY, 2] {
        for workers in [1usize, 2, 4] {
            let mut wall = f64::INFINITY;
            let mut stats = SchedStats::default();
            for _ in 0..reps {
                let sched: Scheduler<u32> = Scheduler::with_capacity(workers, capacity);
                let checksum = AtomicU64::new(0);
                sched.inject(depth);
                let start = Instant::now();
                drain_tree(&sched, fanout, &checksum);
                let elapsed = start.elapsed().as_secs_f64();
                let s = sched.stats();
                assert_eq!(s.completed, expected, "tree drained short");
                if elapsed < wall {
                    wall = elapsed;
                    stats = s;
                }
            }
            let claims = stats.local_pops + stats.injector_claims + stats.steals;
            let local_fraction =
                if claims == 0 { 0.0 } else { stats.local_pops as f64 / claims as f64 };
            println!(
                "sched: {workers} workers cap {capacity}: {:.0} tasks/s (local {:.0}%, \
                 steals {}, spills {})",
                expected as f64 / wall,
                local_fraction * 100.0,
                stats.steals,
                stats.spills
            );
            report.runs.push(RunResult {
                workers,
                deque_capacity: capacity,
                wall_seconds: wall,
                tasks_per_second: expected as f64 / wall,
                local_claim_fraction: local_fraction,
                stats: stats.into(),
            });
        }
    }

    if full {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        // Anchor at the workspace root regardless of cargo's bench CWD.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
        std::fs::write(path, json).expect("write BENCH_sched.json");
        println!("sched: wrote {path}");
    }
}
