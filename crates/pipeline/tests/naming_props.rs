//! Property-based tests of the logical naming convention — the mechanism
//! that makes equivalence discovery "free" in HYPPO.

use hyppo_ml::{Config, LogicalOp};
use hyppo_pipeline::{build_pipeline_mode, NamingMode, PipelineSpec};
use proptest::prelude::*;

/// A random linear preprocessing pipeline over a fixed dataset: a chain of
/// fitted scalers/imputers, each with a per-step implementation choice.
fn arb_chain() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // (operator pick, impl pick) per step
    proptest::collection::vec((0usize..4, 0usize..2), 1..6)
}

const OPS: [LogicalOp; 4] = [
    LogicalOp::StandardScaler,
    LogicalOp::MinMaxScaler,
    LogicalOp::ImputerMean,
    LogicalOp::ImputerMedian,
];

fn build_spec(chain: &[(usize, usize)], impl_override: Option<usize>) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    let data = spec.load("d");
    let (mut train, _test) = spec.split(data, Config::new().with_i("seed", 1));
    for &(op_pick, impl_pick) in chain {
        let op = OPS[op_pick];
        let imp = impl_override.unwrap_or(impl_pick) % op.impls().len();
        let state = spec.fit(op, imp, Config::new(), &[train]);
        train = spec.transform(op, imp, Config::new(), state, train);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn logical_names_are_impl_invariant(chain in arb_chain()) {
        let all_zero = build_spec(&chain, Some(0));
        let all_one = build_spec(&chain, Some(1));
        prop_assert_eq!(
            all_zero.output_names(),
            all_one.output_names(),
            "implementation choice must not affect logical names"
        );
    }

    #[test]
    fn physical_names_distinguish_impl_chains(chain in arb_chain()) {
        let all_zero = build_spec(&chain, Some(0));
        let all_one = build_spec(&chain, Some(1));
        // Load/split prefix is impl-free; fitted steps must differ whenever
        // the chosen op actually has two impls (all of OPS do).
        let a = all_zero.output_names_mode(NamingMode::Physical);
        let b = all_one.output_names_mode(NamingMode::Physical);
        prop_assert_ne!(a.last(), b.last(), "physical names must expose impl choices");
    }

    #[test]
    fn names_are_injective_over_structure(chain in arb_chain()) {
        // Distinct steps of one spec never collide unless they are the
        // same logical computation.
        let spec = build_spec(&chain, Some(0));
        let names = spec.output_names();
        let flat: Vec<_> = names.iter().flatten().collect();
        let mut sorted = flat.clone();
        sorted.sort();
        sorted.dedup();
        // Chains never repeat a computation (each fit consumes the running
        // train artifact), so all names are distinct.
        prop_assert_eq!(sorted.len(), flat.len());
    }

    #[test]
    fn hypergraphs_merge_exactly_under_logical_naming(chain in arb_chain()) {
        // Building the same spec twice into hypergraphs yields identical
        // structure (names are stable), and the logical graph never has
        // more nodes than the physical one.
        let logical = build_pipeline_mode(build_spec(&chain, None), NamingMode::Logical);
        let physical = build_pipeline_mode(build_spec(&chain, None), NamingMode::Physical);
        prop_assert!(logical.graph.node_count() <= physical.graph.node_count());
        prop_assert_eq!(logical.targets.len(), physical.targets.len());
        // Both remain executable.
        prop_assert!(hyppo_hypergraph::is_b_connected(
            &logical.graph, &[logical.source], &logical.targets
        ));
        prop_assert!(hyppo_hypergraph::is_b_connected(
            &physical.graph, &[physical.source], &physical.targets
        ));
    }
}
