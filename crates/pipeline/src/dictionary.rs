//! The operator dictionary `D` (paper §IV-B).
//!
//! Maps each `logical-operator.task-type` entry to its equivalent physical
//! implementations. The implementation tables live on
//! [`hyppo_ml::LogicalOp`]; the dictionary adds lookup, enumeration, and
//! the ability to *restrict* the visible implementations (used by ablation
//! experiments that disable equivalences).

use hyppo_ml::{LogicalOp, PhysImpl, TaskType};
use std::collections::BTreeMap;

/// The task dictionary: `lop.tasktype → [impl, …]`.
#[derive(Clone, Debug)]
pub struct Dictionary {
    entries: BTreeMap<(LogicalOp, TaskType), Vec<PhysImpl>>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::full()
    }
}

impl Dictionary {
    /// The full dictionary with every registered implementation.
    pub fn full() -> Self {
        let mut entries = BTreeMap::new();
        for op in LogicalOp::ALL {
            for &task in op.task_types() {
                entries.insert((op, task), op.impls().to_vec());
            }
        }
        Dictionary { entries }
    }

    /// A dictionary exposing only implementation 0 of each operator —
    /// equivalences disabled. Baselines (Helix, Collab) see the pipeline
    /// through this dictionary: one physical operator per logical operator.
    pub fn single_impl() -> Self {
        let mut d = Self::full();
        for impls in d.entries.values_mut() {
            impls.truncate(1);
        }
        d
    }

    /// Implementations registered for `(op, task)`.
    pub fn impls(&self, op: LogicalOp, task: TaskType) -> &[PhysImpl] {
        self.entries.get(&(op, task)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the entry exists.
    pub fn contains(&self, op: LogicalOp, task: TaskType) -> bool {
        self.entries.contains_key(&(op, task))
    }

    /// Number of `lop.tasktype` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that are optimization candidates: more than one registered
    /// physical implementation (paper §IV-B).
    pub fn optimization_candidates(&self) -> impl Iterator<Item = (LogicalOp, TaskType)> + '_ {
        self.entries.iter().filter(|(_, impls)| impls.len() > 1).map(|(&key, _)| key)
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = ((LogicalOp, TaskType), &[PhysImpl])> + '_ {
        self.entries.iter().map(|(&k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dictionary_has_paper_scale() {
        let d = Dictionary::full();
        assert!(d.len() >= 40, "dictionary has {} entries", d.len());
        assert!(d.contains(LogicalOp::Pca, TaskType::Fit));
        assert!(!d.contains(LogicalOp::Pca, TaskType::Predict));
    }

    #[test]
    fn pca_fit_has_the_flagship_pair() {
        let d = Dictionary::full();
        let impls = d.impls(LogicalOp::Pca, TaskType::Fit);
        assert_eq!(impls.len(), 2);
        assert!(impls[0].name.contains("sklearn"));
        assert!(impls[1].name.contains("torch"));
    }

    #[test]
    fn single_impl_disables_equivalences() {
        let d = Dictionary::single_impl();
        assert_eq!(d.optimization_candidates().count(), 0);
        assert_eq!(d.impls(LogicalOp::Pca, TaskType::Fit).len(), 1);
        assert_eq!(d.len(), Dictionary::full().len(), "entries survive, impls shrink");
    }

    #[test]
    fn candidates_have_multiple_impls() {
        let d = Dictionary::full();
        let candidates: Vec<_> = d.optimization_candidates().collect();
        assert!(candidates.len() >= 12, "{} candidates", candidates.len());
        for (op, task) in candidates {
            assert!(d.impls(op, task).len() > 1);
        }
    }

    #[test]
    fn unknown_entry_yields_empty() {
        let d = Dictionary::full();
        assert!(d.impls(LogicalOp::Accuracy, TaskType::Fit).is_empty());
    }
}
