//! Node and hyperedge labels shared by pipelines, histories, augmentations,
//! and plans.

use crate::naming::ArtifactName;
use hyppo_ml::{ArtifactKind, Config, LogicalOp, TaskType};
use serde::{Deserialize, Serialize};

/// Reporting-oriented artifact role, matching the artifact types the
/// paper's Figure 5 analyses (`train`, `test`, `op-state`, `value`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArtifactRole {
    /// The storage source node `s` (one per graph).
    Source,
    /// A raw dataset as loaded.
    Raw,
    /// A training split (or transformed training data).
    Train,
    /// A test split (or transformed test data).
    Test,
    /// A fitted operator state.
    OpState,
    /// A prediction vector.
    Predictions,
    /// A scalar evaluation result.
    Value,
}

impl ArtifactRole {
    /// Short label used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactRole::Source => "source",
            ArtifactRole::Raw => "raw",
            ArtifactRole::Train => "train",
            ArtifactRole::Test => "test",
            ArtifactRole::OpState => "op-state",
            ArtifactRole::Predictions => "predictions",
            ArtifactRole::Value => "value",
        }
    }
}

/// Label of an artifact node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeLabel {
    /// Logical name (recursive backward-star hash; equivalence key).
    pub name: ArtifactName,
    /// Payload kind.
    pub kind: ArtifactKind,
    /// Reporting role.
    pub role: ArtifactRole,
    /// Human-readable hint, e.g. `standard_scaler.state`.
    pub hint: String,
    /// Size in bytes, known after the artifact has been produced once.
    pub size_bytes: Option<u64>,
}

impl NodeLabel {
    /// Label for the storage source node `s`.
    pub fn source() -> Self {
        NodeLabel {
            name: ArtifactName(0),
            kind: ArtifactKind::Data,
            role: ArtifactRole::Source,
            hint: "s".to_string(),
            size_bytes: None,
        }
    }
}

/// Label of a task hyperedge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeLabel {
    /// Logical operator.
    pub op: LogicalOp,
    /// Task type.
    pub task: TaskType,
    /// Physical implementation index into `op.impls()`.
    pub impl_index: usize,
    /// Operator configuration (hyperparameters).
    pub config: Config,
    /// For `Load` edges: the id of the dataset or materialized artifact
    /// being loaded.
    pub dataset: Option<String>,
}

impl EdgeLabel {
    /// A computational task label.
    pub fn task(op: LogicalOp, task: TaskType, impl_index: usize, config: Config) -> Self {
        EdgeLabel { op, task, impl_index, config, dataset: None }
    }

    /// A `load` edge for a raw dataset.
    pub fn load_dataset(dataset_id: &str) -> Self {
        EdgeLabel {
            op: LogicalOp::LoadDataset,
            task: TaskType::Load,
            impl_index: 0,
            config: Config::new(),
            dataset: Some(dataset_id.to_string()),
        }
    }

    /// Whether this is a load (source) edge.
    pub fn is_load(&self) -> bool {
        self.task == TaskType::Load
    }

    /// Short display string, e.g. `standard_scaler.fit[0]`.
    pub fn display(&self) -> String {
        format!("{}.{}[{}]", self.op.name(), self.task.name(), self.impl_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_names() {
        assert_eq!(ArtifactRole::OpState.name(), "op-state");
        assert_eq!(ArtifactRole::Train.name(), "train");
    }

    #[test]
    fn source_label() {
        let s = NodeLabel::source();
        assert_eq!(s.role, ArtifactRole::Source);
        assert_eq!(s.hint, "s");
    }

    #[test]
    fn load_edges_are_loads() {
        let l = EdgeLabel::load_dataset("higgs");
        assert!(l.is_load());
        assert_eq!(l.dataset.as_deref(), Some("higgs"));
        let t = EdgeLabel::task(LogicalOp::Ridge, TaskType::Fit, 1, Config::new());
        assert!(!t.is_load());
    }

    #[test]
    fn display_includes_impl() {
        let t = EdgeLabel::task(LogicalOp::Pca, TaskType::Fit, 1, Config::new());
        assert_eq!(t.display(), "pca.fit[1]");
    }
}
