//! Logical artifact naming.
//!
//! Each artifact's name encodes its backward star *recursively* using
//! logical operators, task types, and configurations — but **not** physical
//! implementations. Two tasks that apply the same logical operator with the
//! same configuration to the same inputs therefore produce identically
//! named outputs, which is how the augmenter discovers equivalences "for
//! free" (paper §IV-C/§IV-D: "equivalent artifacts are immediately apparent
//! thanks to our naming convention").
//!
//! Names are 64-bit FNV-1a hashes: stable across runs and processes
//! (unlike `DefaultHasher`, which is randomly keyed).

use hyppo_ml::{Config, LogicalOp, TaskType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical artifact name: a stable 64-bit hash of the artifact's
/// recursive derivation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArtifactName(pub u64);

impl fmt::Debug for ArtifactName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{:016x}", self.0)
    }
}

impl fmt::Display for ArtifactName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice, continuing from `state`.
fn fnv_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Name of a raw dataset artifact held in storage.
pub fn dataset_name(dataset_id: &str) -> ArtifactName {
    let mut h = fnv_bytes(FNV_OFFSET, b"dataset:");
    h = fnv_bytes(h, dataset_id.as_bytes());
    ArtifactName(h)
}

/// Naming mode: whether physical implementations participate in names.
///
/// HYPPO names artifacts *logically* (implementation-blind), which is what
/// makes equivalent artifacts collide by construction. The reuse baselines
/// (Helix, Collab) hash the concrete operator implementations instead, so a
/// `tf` scaler state and an `sklearn` scaler state are different artifacts
/// to them — exactly the limitation the paper's §I highlights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NamingMode {
    /// Implementation-blind names (HYPPO).
    Logical,
    /// Implementation-aware names (reuse-only baselines).
    Physical,
}

/// Name of output `output_index` of a task applying `(op, task, config)` to
/// inputs with the given names.
///
/// Input order matters (a transform's state input is not interchangeable
/// with its data input), physical implementation does not.
pub fn output_name(
    op: LogicalOp,
    task: TaskType,
    config: &Config,
    inputs: &[ArtifactName],
    output_index: usize,
) -> ArtifactName {
    output_name_mode(op, task, config, inputs, output_index, NamingMode::Logical, 0)
}

/// Mode-aware variant of [`output_name`]: in [`NamingMode::Physical`] the
/// implementation index is folded into the hash.
pub fn output_name_mode(
    op: LogicalOp,
    task: TaskType,
    config: &Config,
    inputs: &[ArtifactName],
    output_index: usize,
    mode: NamingMode,
    impl_index: usize,
) -> ArtifactName {
    let mut h = fnv_bytes(FNV_OFFSET, op.name().as_bytes());
    if mode == NamingMode::Physical {
        h = fnv_bytes(h, b"@impl");
        h = fnv_bytes(h, &(impl_index as u64).to_le_bytes());
    }
    h = fnv_bytes(h, b".");
    h = fnv_bytes(h, task.name().as_bytes());
    h = fnv_bytes(h, b"{");
    h = fnv_bytes(h, config.canonical().as_bytes());
    h = fnv_bytes(h, b"}(");
    for input in inputs {
        h = fnv_bytes(h, &input.0.to_le_bytes());
        h = fnv_bytes(h, b",");
    }
    h = fnv_bytes(h, b")#");
    h = fnv_bytes(h, &(output_index as u64).to_le_bytes());
    ArtifactName(h)
}

/// Identity of a *task* (hyperedge) at the logical level: the name of its
/// 0th output doubles as the task identity since a task is fully determined
/// by `(op, task, config, inputs)`.
pub fn task_identity(
    op: LogicalOp,
    task: TaskType,
    config: &Config,
    inputs: &[ArtifactName],
) -> ArtifactName {
    output_name(op, task, config, inputs, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(alpha: f64) -> Config {
        Config::new().with_f("alpha", alpha)
    }

    #[test]
    fn dataset_names_distinguish_ids() {
        assert_ne!(dataset_name("higgs"), dataset_name("taxi"));
        assert_eq!(dataset_name("higgs"), dataset_name("higgs"));
    }

    #[test]
    fn same_logical_task_same_name_regardless_of_impl() {
        // The name has no impl parameter at all: equivalence by construction.
        let input = dataset_name("higgs");
        let a = output_name(LogicalOp::StandardScaler, TaskType::Fit, &cfg(1.0), &[input], 0);
        let b = output_name(LogicalOp::StandardScaler, TaskType::Fit, &cfg(1.0), &[input], 0);
        assert_eq!(a, b);
    }

    #[test]
    fn config_changes_name() {
        let input = dataset_name("higgs");
        let a = output_name(LogicalOp::Ridge, TaskType::Fit, &cfg(75.0), &[input], 0);
        let b = output_name(LogicalOp::Ridge, TaskType::Fit, &cfg(1.0), &[input], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn operator_and_task_change_name() {
        let input = dataset_name("higgs");
        let a = output_name(LogicalOp::Ridge, TaskType::Fit, &cfg(1.0), &[input], 0);
        let b = output_name(LogicalOp::Lasso, TaskType::Fit, &cfg(1.0), &[input], 0);
        assert_ne!(a, b);
        let c = output_name(LogicalOp::Ridge, TaskType::Predict, &cfg(1.0), &[input], 0);
        assert_ne!(a, c);
    }

    #[test]
    fn input_order_matters() {
        let x = dataset_name("x");
        let y = dataset_name("y");
        let cfg = Config::new();
        let a = output_name(LogicalOp::StandardScaler, TaskType::Transform, &cfg, &[x, y], 0);
        let b = output_name(LogicalOp::StandardScaler, TaskType::Transform, &cfg, &[y, x], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn output_index_distinguishes_multi_output() {
        let input = dataset_name("higgs");
        let cfg = Config::new();
        let train = output_name(LogicalOp::TrainTestSplit, TaskType::Split, &cfg, &[input], 0);
        let test = output_name(LogicalOp::TrainTestSplit, TaskType::Split, &cfg, &[input], 1);
        assert_ne!(train, test);
    }

    #[test]
    fn names_are_recursive() {
        // Changing an upstream config changes all downstream names.
        let raw = dataset_name("higgs");
        let cfg0 = Config::new().with_i("seed", 0);
        let cfg1 = Config::new().with_i("seed", 1);
        let empty = Config::new();
        let train0 = output_name(LogicalOp::TrainTestSplit, TaskType::Split, &cfg0, &[raw], 0);
        let train1 = output_name(LogicalOp::TrainTestSplit, TaskType::Split, &cfg1, &[raw], 0);
        let s0 = output_name(LogicalOp::StandardScaler, TaskType::Fit, &empty, &[train0], 0);
        let s1 = output_name(LogicalOp::StandardScaler, TaskType::Fit, &empty, &[train1], 0);
        assert_ne!(s0, s1);
    }

    #[test]
    fn task_identity_differs_from_outputs() {
        let input = dataset_name("higgs");
        let cfg = Config::new();
        let t = task_identity(LogicalOp::TrainTestSplit, TaskType::Split, &cfg, &[input]);
        let o0 = output_name(LogicalOp::TrainTestSplit, TaskType::Split, &cfg, &[input], 0);
        assert_ne!(t, o0);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let n = dataset_name("x");
        let s = n.to_string();
        assert_eq!(s.len(), 17);
        assert!(s.starts_with('a'));
    }

    #[test]
    fn names_are_stable_across_processes() {
        // Regression pin: FNV is unkeyed, so this value must never change.
        assert_eq!(
            dataset_name("higgs").0,
            fnv_bytes(fnv_bytes(FNV_OFFSET, b"dataset:"), b"higgs")
        );
    }
}
