//! Pipeline representation for HYPPO.
//!
//! The paper's parser (§IV-C) turns user Python code into a labelled
//! directed hypergraph by (a) mapping each function call to a dictionary
//! entry (logical operator + task type + configuration), and (b) assigning
//! each artifact a *logical name* that recursively encodes its backward
//! star in terms of logical operators — so equivalent artifacts produced by
//! different physical implementations receive the *same* name.
//!
//! This crate is that parser's Rust counterpart. Instead of parsing Python
//! source we accept a typed [`PipelineSpec`] (the information the parser
//! would extract), look operators up in the [`Dictionary`], compute logical
//! names ([`naming`]), and build the pipeline hypergraph ([`build`]).

pub mod build;
pub mod dictionary;
pub mod labels;
pub mod naming;
pub mod spec;

pub use build::{build_pipeline, build_pipeline_mode, figure1_pipeline, Pipeline};
pub use dictionary::Dictionary;
pub use labels::{ArtifactRole, EdgeLabel, NodeLabel};
pub use naming::{ArtifactName, NamingMode};
pub use spec::{ArtifactHandle, PipelineSpec, Step, StepId};
