//! The pipeline specification DSL.
//!
//! A [`PipelineSpec`] is what the paper's Python parser extracts from user
//! code: an ordered list of steps, each a `(logical op, task type, physical
//! impl, config)` application to earlier steps' outputs. The builder
//! methods mirror the sklearn-style code of the paper's Figure 1(a).

use crate::naming::{self, ArtifactName};
use hyppo_ml::{Config, LogicalOp, TaskType};
use serde::{Deserialize, Serialize};

/// Index of a step within its spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StepId(pub usize);

/// A reference to one output of a step (steps can be multi-output).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArtifactHandle {
    /// Producing step.
    pub step: StepId,
    /// Output position within the step.
    pub output: usize,
}

/// One task application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Logical operator.
    pub op: LogicalOp,
    /// Task type.
    pub task: TaskType,
    /// Physical implementation chosen in the user code.
    pub impl_index: usize,
    /// Operator configuration.
    pub config: Config,
    /// Inputs: outputs of earlier steps.
    pub inputs: Vec<ArtifactHandle>,
    /// For load steps: the dataset id.
    pub dataset: Option<String>,
}

impl Step {
    /// Number of artifacts this step produces.
    pub fn n_outputs(&self) -> usize {
        match self.task {
            TaskType::Split => 2,
            _ => 1,
        }
    }
}

/// A complete pipeline specification.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Ordered steps; inputs always reference earlier steps.
    pub steps: Vec<Step>,
}

impl PipelineSpec {
    /// An empty spec.
    pub fn new() -> Self {
        PipelineSpec::default()
    }

    fn push(&mut self, step: Step) -> StepId {
        for input in &step.inputs {
            assert!(input.step.0 < self.steps.len(), "step input must reference an earlier step");
            assert!(
                input.output < self.steps[input.step.0].n_outputs(),
                "step input references a nonexistent output"
            );
        }
        self.steps.push(step);
        StepId(self.steps.len() - 1)
    }

    /// Load a raw dataset from storage.
    pub fn load(&mut self, dataset_id: &str) -> ArtifactHandle {
        let id = self.push(Step {
            op: LogicalOp::LoadDataset,
            task: TaskType::Load,
            impl_index: 0,
            config: Config::new(),
            inputs: vec![],
            dataset: Some(dataset_id.to_string()),
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Train/test split; returns `(train, test)` handles.
    pub fn split(
        &mut self,
        data: ArtifactHandle,
        config: Config,
    ) -> (ArtifactHandle, ArtifactHandle) {
        let id = self.push(Step {
            op: LogicalOp::TrainTestSplit,
            task: TaskType::Split,
            impl_index: 0,
            config,
            inputs: vec![data],
            dataset: None,
        });
        (ArtifactHandle { step: id, output: 0 }, ArtifactHandle { step: id, output: 1 })
    }

    /// Fit task over the given inputs (training data last for ensembles).
    pub fn fit(
        &mut self,
        op: LogicalOp,
        impl_index: usize,
        config: Config,
        inputs: &[ArtifactHandle],
    ) -> ArtifactHandle {
        let id = self.push(Step {
            op,
            task: TaskType::Fit,
            impl_index,
            config,
            inputs: inputs.to_vec(),
            dataset: None,
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Transform with a fitted state: inputs `(state, data)`.
    pub fn transform(
        &mut self,
        op: LogicalOp,
        impl_index: usize,
        config: Config,
        state: ArtifactHandle,
        data: ArtifactHandle,
    ) -> ArtifactHandle {
        let id = self.push(Step {
            op,
            task: TaskType::Transform,
            impl_index,
            config,
            inputs: vec![state, data],
            dataset: None,
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Stateless transform: input `(data)`.
    pub fn transform_stateless(
        &mut self,
        op: LogicalOp,
        config: Config,
        data: ArtifactHandle,
    ) -> ArtifactHandle {
        let id = self.push(Step {
            op,
            task: TaskType::Transform,
            impl_index: 0,
            config,
            inputs: vec![data],
            dataset: None,
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Predict with a fitted model: inputs `(state, data)`.
    pub fn predict(
        &mut self,
        op: LogicalOp,
        impl_index: usize,
        config: Config,
        model: ArtifactHandle,
        data: ArtifactHandle,
    ) -> ArtifactHandle {
        let id = self.push(Step {
            op,
            task: TaskType::Predict,
            impl_index,
            config,
            inputs: vec![model, data],
            dataset: None,
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Evaluate predictions against a dataset's ground truth.
    pub fn evaluate(
        &mut self,
        op: LogicalOp,
        predictions: ArtifactHandle,
        truth: ArtifactHandle,
    ) -> ArtifactHandle {
        let id = self.push(Step {
            op,
            task: TaskType::Evaluate,
            impl_index: 0,
            config: Config::new(),
            inputs: vec![predictions, truth],
            dataset: None,
        });
        ArtifactHandle { step: id, output: 0 }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the spec has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Logical names of every step output, computed recursively. Index by
    /// `[step][output]`.
    pub fn output_names(&self) -> Vec<Vec<ArtifactName>> {
        self.output_names_mode(naming::NamingMode::Logical)
    }

    /// Mode-aware output names ([`naming::NamingMode::Physical`] folds the
    /// implementation index into every name — the baselines' view).
    pub fn output_names_mode(&self, mode: naming::NamingMode) -> Vec<Vec<ArtifactName>> {
        let mut names: Vec<Vec<ArtifactName>> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let input_names: Vec<ArtifactName> =
                step.inputs.iter().map(|h| names[h.step.0][h.output]).collect();
            let outs = match (&step.dataset, step.task) {
                (Some(id), TaskType::Load) => vec![naming::dataset_name(id)],
                _ => (0..step.n_outputs())
                    .map(|i| {
                        naming::output_name_mode(
                            step.op,
                            step.task,
                            &step.config,
                            &input_names,
                            i,
                            mode,
                            step.impl_index,
                        )
                    })
                    .collect(),
            };
            names.push(outs);
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(a) pipeline.
    pub fn figure1_spec() -> PipelineSpec {
        let mut spec = PipelineSpec::new();
        let data = spec.load("higgs");
        let (train, test) = spec.split(data, Config::new().with_i("seed", 0));
        let scaler = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        let test_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, test);
        let model = spec.fit(LogicalOp::RandomForest, 0, Config::new(), &[train]);
        let _p_train = spec.predict(LogicalOp::RandomForest, 0, Config::new(), model, train);
        let _p_test = spec.predict(LogicalOp::RandomForest, 0, Config::new(), model, test_s);
        spec
    }

    #[test]
    fn figure1_has_seven_steps() {
        let spec = figure1_spec();
        assert_eq!(spec.len(), 7);
        assert!(!spec.is_empty());
    }

    #[test]
    fn split_produces_two_outputs() {
        let spec = figure1_spec();
        assert_eq!(spec.steps[1].n_outputs(), 2);
        assert_eq!(spec.steps[0].n_outputs(), 1);
    }

    #[test]
    fn output_names_respect_structure() {
        let spec = figure1_spec();
        let names = spec.output_names();
        assert_eq!(names.len(), 7);
        assert_eq!(names[1].len(), 2);
        assert_ne!(names[1][0], names[1][1], "train and test differ");
    }

    #[test]
    fn identical_specs_have_identical_names() {
        let a = figure1_spec().output_names();
        let b = figure1_spec().output_names();
        assert_eq!(a, b);
    }

    #[test]
    fn impl_choice_does_not_change_names() {
        let mut spec_a = PipelineSpec::new();
        let d = spec_a.load("higgs");
        spec_a.fit(LogicalOp::StandardScaler, 0, Config::new(), &[d]);
        let mut spec_b = PipelineSpec::new();
        let d = spec_b.load("higgs");
        spec_b.fit(LogicalOp::StandardScaler, 1, Config::new(), &[d]);
        assert_eq!(spec_a.output_names(), spec_b.output_names());
    }

    #[test]
    #[should_panic(expected = "earlier step")]
    fn forward_references_rejected() {
        let mut spec = PipelineSpec::new();
        let bogus = ArtifactHandle { step: StepId(5), output: 0 };
        spec.fit(LogicalOp::Ridge, 0, Config::new(), &[bogus]);
    }

    #[test]
    #[should_panic(expected = "nonexistent output")]
    fn invalid_output_index_rejected() {
        let mut spec = PipelineSpec::new();
        let d = spec.load("higgs");
        let bogus = ArtifactHandle { step: d.step, output: 3 };
        spec.fit(LogicalOp::Ridge, 0, Config::new(), &[bogus]);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = figure1_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: PipelineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
