//! Build the pipeline hypergraph from a specification (the parser's second
//! half, paper §IV-C).
//!
//! - every artifact becomes a node labelled with its logical name;
//! - every task becomes a hyperedge (multi-input, multi-output);
//! - the special source node `s` represents storage; load steps become
//!   hyperedges from `s`;
//! - artifacts with identical logical names are **merged** (within-pipeline
//!   common subexpressions collapse), and identical tasks (same logical
//!   identity *and* same physical implementation) are deduplicated, while
//!   the same logical task with two different implementations yields two
//!   parallel hyperedges — alternatives already present in `P`.

use crate::labels::{ArtifactRole, EdgeLabel, NodeLabel};
use crate::naming::ArtifactName;
use crate::spec::{PipelineSpec, Step};
use hyppo_hypergraph::{HyperGraph, NodeId};
use hyppo_ml::{ArtifactKind, LogicalOp, TaskType};
use std::collections::HashMap;

/// A pipeline: a labelled hypergraph with its source node and targets.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// The labelled hypergraph `P`.
    pub graph: HyperGraph<NodeLabel, EdgeLabel>,
    /// The storage source node `s`.
    pub source: NodeId,
    /// Target artifacts: sink nodes with empty forward stars.
    pub targets: Vec<NodeId>,
    /// Node of each step output: `outputs[step][output_index]`.
    pub outputs: Vec<Vec<NodeId>>,
    /// The originating spec.
    pub spec: PipelineSpec,
}

impl Pipeline {
    /// Look up a node by logical artifact name.
    pub fn node_by_name(&self, name: ArtifactName) -> Option<NodeId> {
        self.graph.node_ids().find(|&v| self.graph.node(v).name == name)
    }
}

fn output_kind(step: &Step) -> ArtifactKind {
    match step.task {
        TaskType::Fit => ArtifactKind::OpState,
        TaskType::Predict => ArtifactKind::Predictions,
        TaskType::Evaluate => ArtifactKind::Value,
        _ => ArtifactKind::Data,
    }
}

fn output_role(step: &Step, input_roles: &[ArtifactRole], output_index: usize) -> ArtifactRole {
    match step.task {
        TaskType::Load => ArtifactRole::Raw,
        TaskType::Split => {
            if output_index == 0 {
                ArtifactRole::Train
            } else {
                ArtifactRole::Test
            }
        }
        TaskType::Fit => ArtifactRole::OpState,
        TaskType::Predict => ArtifactRole::Predictions,
        TaskType::Evaluate => ArtifactRole::Value,
        TaskType::Transform => {
            // Inherit the data input's role (the last input for fitted
            // transforms, the only input for stateless ones).
            *input_roles.last().unwrap_or(&ArtifactRole::Raw)
        }
    }
}

/// Build the pipeline hypergraph from a spec with logical (HYPPO) naming.
pub fn build_pipeline(spec: PipelineSpec) -> Pipeline {
    build_pipeline_mode(spec, crate::naming::NamingMode::Logical)
}

/// Build the pipeline hypergraph under the given naming mode.
///
/// In physical mode, artifacts produced by different implementations do not
/// merge — the hypergraph degenerates to the DAG the reuse baselines see.
pub fn build_pipeline_mode(spec: PipelineSpec, mode: crate::naming::NamingMode) -> Pipeline {
    let names = spec.output_names_mode(mode);
    let mut graph: HyperGraph<NodeLabel, EdgeLabel> =
        HyperGraph::with_capacity(spec.len() * 2 + 1, spec.len());
    let source = graph.add_node(NodeLabel::source());

    let mut node_by_name: HashMap<ArtifactName, NodeId> = HashMap::new();
    // Edge dedup key: logical identity + physical impl.
    let mut seen_edges: HashMap<(ArtifactName, usize), ()> = HashMap::new();
    let mut outputs: Vec<Vec<NodeId>> = Vec::with_capacity(spec.len());

    for (step_idx, step) in spec.steps.iter().enumerate() {
        let input_nodes: Vec<NodeId> =
            step.inputs.iter().map(|h| outputs[h.step.0][h.output]).collect();
        let input_roles: Vec<ArtifactRole> =
            input_nodes.iter().map(|&v| graph.node(v).role).collect();

        // Create or reuse output nodes.
        let mut head = Vec::with_capacity(step.n_outputs());
        let mut step_outputs = Vec::with_capacity(step.n_outputs());
        for (i, &name) in names[step_idx].iter().enumerate() {
            let node = *node_by_name.entry(name).or_insert_with(|| {
                graph.add_node(NodeLabel {
                    name,
                    kind: output_kind(step),
                    role: output_role(step, &input_roles, i),
                    hint: format!("{}.{}#{}", step.op.name(), step.task.name(), i),
                    size_bytes: None,
                })
            });
            head.push(node);
            step_outputs.push(node);
        }

        // Deduplicate identical tasks (same logical identity + same impl).
        let identity = crate::naming::task_identity(
            step.op,
            step.task,
            &step.config,
            &step.inputs.iter().map(|h| names[h.step.0][h.output]).collect::<Vec<_>>(),
        );
        let edge_key = (identity, step.impl_index);
        if seen_edges.insert(edge_key, ()).is_none() {
            let tail = if step.task == TaskType::Load { vec![source] } else { input_nodes };
            let label = match (&step.dataset, step.task) {
                (Some(id), TaskType::Load) => EdgeLabel::load_dataset(id),
                _ => EdgeLabel::task(step.op, step.task, step.impl_index, step.config.clone()),
            };
            graph.add_edge(tail, head, label);
        }
        outputs.push(step_outputs);
    }

    let targets: Vec<NodeId> = graph.sinks().into_iter().filter(|&v| v != source).collect();
    Pipeline { graph, source, targets, outputs, spec }
}

/// Convenience: the paper's Figure 1(a) pipeline (load → split → scaler.fit
/// → scaler.transform(test) → forest.fit → predict(train) → predict(test)).
pub fn figure1_pipeline(dataset_id: &str) -> Pipeline {
    use hyppo_ml::Config;
    let mut spec = PipelineSpec::new();
    let data = spec.load(dataset_id);
    let (train, test) = spec.split(data, Config::new().with_i("seed", 0));
    let scaler = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
    let test_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, test);
    let model = spec.fit(
        LogicalOp::RandomForest,
        0,
        Config::new().with_i("n_trees", 5).with_i("seed", 1),
        &[train],
    );
    spec.predict(
        LogicalOp::RandomForest,
        0,
        Config::new().with_i("n_trees", 5).with_i("seed", 1),
        model,
        train,
    );
    spec.predict(
        LogicalOp::RandomForest,
        0,
        Config::new().with_i("n_trees", 5).with_i("seed", 1),
        model,
        test_s,
    );
    build_pipeline(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::Config;

    #[test]
    fn figure1_structure() {
        let p = figure1_pipeline("higgs");
        // Nodes: s, raw, train, test, scaler-state, scaled-test, model,
        // preds-train, preds-test = 9.
        assert_eq!(p.graph.node_count(), 9);
        // Edges: load, split, scaler.fit, scaler.transform, forest.fit,
        // predict(train), predict(test) = 7.
        assert_eq!(p.graph.edge_count(), 7);
        // Targets: the two prediction artifacts.
        assert_eq!(p.targets.len(), 2);
    }

    #[test]
    fn split_edge_is_multi_output() {
        let p = figure1_pipeline("higgs");
        let split_edge =
            p.graph.edge_ids().find(|&e| p.graph.edge(e).op == LogicalOp::TrainTestSplit).unwrap();
        assert_eq!(p.graph.head(split_edge).len(), 2);
    }

    #[test]
    fn fit_state_feeds_transform_as_multi_input() {
        let p = figure1_pipeline("higgs");
        let transform_edge =
            p.graph.edge_ids().find(|&e| p.graph.edge(e).task == TaskType::Transform).unwrap();
        assert_eq!(p.graph.tail(transform_edge).len(), 2, "state + data");
    }

    #[test]
    fn load_edges_start_at_source() {
        let p = figure1_pipeline("higgs");
        for e in p.graph.edge_ids() {
            if p.graph.edge(e).is_load() {
                assert_eq!(p.graph.tail(e), &[p.source]);
            }
        }
    }

    #[test]
    fn common_subexpressions_merge() {
        // Two identical scaler fits on the same train data collapse into one
        // node and one edge.
        let mut spec = PipelineSpec::new();
        let d = spec.load("higgs");
        let (train, _test) = spec.split(d, Config::new());
        let s1 = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        let s2 = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        let p = build_pipeline(spec);
        assert_eq!(p.outputs[2][0], p.outputs[3][0], "same logical artifact, same node");
        let fit_edges =
            p.graph.edge_ids().filter(|&e| p.graph.edge(e).task == TaskType::Fit).count();
        assert_eq!(fit_edges, 1, "identical tasks deduplicate");
        let _ = (s1, s2);
    }

    #[test]
    fn different_impls_become_parallel_alternatives() {
        let mut spec = PipelineSpec::new();
        let d = spec.load("higgs");
        let (train, _) = spec.split(d, Config::new());
        spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        spec.fit(LogicalOp::StandardScaler, 1, Config::new(), &[train]);
        let p = build_pipeline(spec);
        let fit_edges: Vec<_> =
            p.graph.edge_ids().filter(|&e| p.graph.edge(e).task == TaskType::Fit).collect();
        assert_eq!(fit_edges.len(), 2, "two impls = two parallel hyperedges");
        // Both edges share the same head node.
        assert_eq!(p.graph.head(fit_edges[0]), p.graph.head(fit_edges[1]));
    }

    #[test]
    fn physical_mode_keeps_impls_apart() {
        let make = || {
            let mut spec = PipelineSpec::new();
            let d = spec.load("higgs");
            let (train, _) = spec.split(d, Config::new());
            spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
            spec.fit(LogicalOp::StandardScaler, 1, Config::new(), &[train]);
            spec
        };
        let logical = build_pipeline_mode(make(), crate::naming::NamingMode::Logical);
        let physical = build_pipeline_mode(make(), crate::naming::NamingMode::Physical);
        // Logical: both fits share one output node. Physical: two nodes.
        assert_eq!(logical.graph.node_count() + 1, physical.graph.node_count());
    }

    #[test]
    fn roles_are_assigned() {
        let p = figure1_pipeline("higgs");
        let roles: Vec<ArtifactRole> = p.graph.nodes().map(|n| n.data.role).collect();
        assert!(roles.contains(&ArtifactRole::Train));
        assert!(roles.contains(&ArtifactRole::Test));
        assert!(roles.contains(&ArtifactRole::OpState));
        assert!(roles.contains(&ArtifactRole::Predictions));
    }

    #[test]
    fn targets_are_b_connected_to_source() {
        let p = figure1_pipeline("higgs");
        assert!(hyppo_hypergraph::is_b_connected(&p.graph, &[p.source], &p.targets));
    }

    #[test]
    fn node_by_name_finds_artifacts() {
        let p = figure1_pipeline("higgs");
        let name = p.graph.node(p.targets[0]).name;
        assert_eq!(p.node_by_name(name), Some(p.targets[0]));
        assert_eq!(p.node_by_name(ArtifactName(12345)), None);
    }
}
