//! HYPPO runtime: concurrent execution of optimized pipeline plans.
//!
//! The core crate plans and executes pipelines serially. This crate adds
//! the concurrency layer on top — std-only (`std::thread` + channels +
//! locks), in three pieces:
//!
//! - [`executor`] — the *wavefront scheduler*: dispatches every hyperedge
//!   whose inputs are available onto a fixed worker pool, driven by the
//!   hypergraph crate's [`InDegreeTracker`](hyppo_hypergraph::InDegreeTracker).
//!   Artifacts come out bit-identical to serial execution (designated
//!   producers pin which equivalent alternative publishes each node);
//! - [`store`] — [`SharedArtifactStore`]: the core artifact store behind
//!   sharded `RwLock`s, preserving the modelled IO-cost accounting exactly
//!   while real lock waits are tracked separately;
//! - [`driver`] — [`SharedHyppo`]: history + estimator behind locks and a
//!   fixed acquisition order, running N exploratory sessions concurrently
//!   against one shared state ([`SharedHyppo::run_sessions_concurrent`]);
//!   the [`ConcurrentSessions`] extension gives the serial
//!   [`Hyppo`](hyppo_core::Hyppo) facade the same entry point.

pub mod driver;
pub mod executor;
pub mod store;

pub use driver::{
    ConcurrentSessions, RuntimeMetrics, SessionReport, SessionsOutcome, SharedHyppo, SharedSession,
};
pub use executor::{execute_plan_parallel, ParallelOutcome, WavefrontMetrics};
pub use store::{SharedArtifactStore, DEFAULT_SHARDS};
