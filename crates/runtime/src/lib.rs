//! HYPPO runtime: concurrent execution of optimized pipeline plans.
//!
//! The core crate plans and executes pipelines serially. This crate adds
//! the concurrency layer on top — std-only (`std::thread` + channels +
//! locks), in three pieces:
//!
//! - [`executor`] — the *wavefront scheduler*: dispatches every hyperedge
//!   whose inputs are available onto a fixed worker pool, driven by the
//!   hypergraph crate's [`InDegreeTracker`](hyppo_hypergraph::InDegreeTracker).
//!   Artifacts come out bit-identical to serial execution (designated
//!   producers pin which equivalent alternative publishes each node);
//! - [`store`] — [`SharedArtifactStore`]: the core artifact store behind
//!   sharded `RwLock`s, preserving the modelled IO-cost accounting exactly
//!   while real lock waits are tracked separately;
//! - [`driver`] — [`SharedHyppo`]: the catalog (history + estimator) as an
//!   epoch-versioned copy-on-write cell ([`CatalogVersion`]) — planners
//!   read immutable [`SharedHyppo::snapshot`]s while other tenants commit,
//!   and every submission comes back stamped with its snapshot/commit
//!   epochs ([`EpochStamp`]).
//!
//! Multi-tenant serving (mailbox actors, admission control, the `Client`
//! API) lives one layer up in `hyppo-serve`, which drives this crate's
//! [`SharedHyppo`] as its embedded backend.

#![deny(missing_docs)]

pub mod driver;
pub mod executor;
pub mod store;

pub use driver::{
    CatalogVersion, EpochStamp, SharedBatchRun, SharedHyppo, SharedRun, SharedSession,
};
pub use executor::{execute_plan_parallel, ParallelOutcome, WavefrontMetrics};
pub use store::{SharedArtifactStore, DEFAULT_SHARDS};
