//! A thread-safe, sharded artifact store.
//!
//! [`SharedArtifactStore`] wraps the core [`ArtifactStore`] in `N`
//! [`RwLock`]-guarded shards so concurrent plan executions and sessions can
//! load and materialize artifacts without a single global lock. Artifacts
//! are routed to shards by their logical name (already a hash, so the
//! distribution is uniform); raw datasets — registered rarely, read often —
//! all live in shard 0.
//!
//! The wrapper preserves the core store's *modelled* cost accounting
//! exactly: every load/store cost reported to callers is the inner store's
//! measured-codec-plus-modelled-IO figure. Real lock contention is
//! accounted separately, as wall-clock
//! [`SharedArtifactStore::lock_wait_seconds`], so the simulated IO model
//! and the real synchronization overhead never mix.

use hyppo_core::codec::CodecError;
use hyppo_core::{ArtifactStorage, ArtifactStore};
use hyppo_ml::Artifact;
use hyppo_pipeline::ArtifactName;
use hyppo_tensor::Dataset;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Default shard count: enough to make same-shard collisions rare for the
/// handful of workers a plan runs, small enough to keep merge cheap.
pub const DEFAULT_SHARDS: usize = 8;

#[derive(Debug)]
struct SharedInner {
    shards: Vec<RwLock<ArtifactStore>>,
    /// Cumulative wall-clock nanoseconds threads spent waiting for shard
    /// locks.
    lock_wait_nanos: AtomicU64,
}

/// Cheaply cloneable handle to a sharded, lock-protected artifact store.
///
/// Clones share the same underlying shards; the handle implements
/// [`ArtifactStorage`], so the core executor, cost annotator, and
/// materializer run against it unchanged.
#[derive(Clone, Debug)]
pub struct SharedArtifactStore {
    inner: Arc<SharedInner>,
}

impl SharedArtifactStore {
    /// Empty store with `n_shards` shards (at least 1).
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let shards = (0..n).map(|_| RwLock::new(ArtifactStore::new())).collect();
        SharedArtifactStore {
            inner: Arc::new(SharedInner { shards, lock_wait_nanos: AtomicU64::new(0) }),
        }
    }

    /// Shard a single-owner store: datasets move to shard 0, artifacts are
    /// redistributed by name without a decode/encode round trip, and every
    /// shard inherits the source store's bandwidth model.
    pub fn from_store(mut store: ArtifactStore, n_shards: usize) -> Self {
        let shared = SharedArtifactStore::new(n_shards);
        {
            let mut shards: Vec<RwLockWriteGuard<'_, ArtifactStore>> = shared
                .inner
                .shards
                .iter()
                .map(|s| s.write().expect("fresh store lock poisoned"))
                .collect();
            for shard in shards.iter_mut() {
                shard.bandwidth = store.bandwidth;
                shard.overhead = store.overhead;
            }
            for (id, dataset) in store.take_datasets() {
                shards[0].register_dataset(&id, dataset);
            }
            let n = shards.len();
            for (name, bytes) in store.entries() {
                shards[shard_of(name, n)].insert_raw(name, bytes.clone());
            }
        }
        shared
    }

    /// Merge the shards back into a single-owner store (the inverse of
    /// [`SharedArtifactStore::from_store`]). Callers are expected to have
    /// joined every thread holding a clone; the merge reads a consistent
    /// snapshot under the shard locks either way.
    pub fn into_store(self) -> ArtifactStore {
        let mut merged: Option<ArtifactStore> = None;
        for shard in &self.inner.shards {
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            match &mut merged {
                None => merged = Some(guard.clone()),
                Some(out) => {
                    for (name, bytes) in guard.entries() {
                        out.insert_raw(name, bytes.clone());
                    }
                }
            }
        }
        merged.unwrap_or_default()
    }

    /// Register a raw source dataset (outside the storage budget).
    pub fn register_dataset(&self, id: &str, dataset: Dataset) {
        self.write_shard(0).register_dataset(id, dataset);
    }

    /// Total bytes of all registered raw datasets.
    pub fn total_dataset_bytes(&self) -> u64 {
        self.read_shard(0).total_dataset_bytes()
    }

    /// Number of materialized artifacts across all shards.
    pub fn len(&self) -> usize {
        (0..self.inner.shards.len()).map(|i| self.read_shard(i).len()).sum()
    }

    /// Whether no artifacts are materialized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative wall-clock seconds threads spent waiting on shard locks —
    /// the real synchronization overhead, kept apart from the modelled IO
    /// costs.
    pub fn lock_wait_seconds(&self) -> f64 {
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge; a torn
        // sum across in-flight adds is acceptable for metrics
        self.inner.lock_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, ArtifactStore> {
        let start = Instant::now();
        let guard = self.inner.shards[i].read().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start);
        guard
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, ArtifactStore> {
        let start = Instant::now();
        let guard = self.inner.shards[i].write().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start);
        guard
    }

    fn record_wait(&self, start: Instant) {
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge only
        self.inner.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn shard_for(&self, name: ArtifactName) -> usize {
        shard_of(name, self.inner.shards.len())
    }
}

/// Names are already hashes, so the low bits shard uniformly.
fn shard_of(name: ArtifactName, n: usize) -> usize {
    name.0 as usize % n
}

impl ArtifactStorage for SharedArtifactStore {
    fn dataset_shape(&self, id: &str) -> Option<(usize, usize)> {
        self.read_shard(0).dataset_shape(id)
    }

    fn dataset_bytes(&self, id: &str) -> Option<u64> {
        self.read_shard(0).dataset_bytes(id)
    }

    fn load_dataset(&self, id: &str) -> Option<(Artifact, f64)> {
        self.read_shard(0).load_dataset(id)
    }

    fn load_artifact(&self, name: ArtifactName) -> Result<Option<(Artifact, f64)>, CodecError> {
        self.read_shard(self.shard_for(name)).load(name)
    }

    fn contains_artifact(&self, name: ArtifactName) -> bool {
        self.read_shard(self.shard_for(name)).contains(name)
    }

    fn artifact_size(&self, name: ArtifactName) -> Option<u64> {
        self.read_shard(self.shard_for(name)).size_of(name)
    }

    fn put_artifact(&mut self, name: ArtifactName, artifact: &Artifact) -> (u64, f64) {
        self.write_shard(self.shard_for(name)).put(name, artifact)
    }

    fn remove_artifact(&mut self, name: ArtifactName) -> Option<u64> {
        self.write_shard(self.shard_for(name)).remove(name)
    }

    fn used_bytes(&self) -> u64 {
        (0..self.inner.shards.len()).map(|i| self.read_shard(i).used_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_pipeline::naming::dataset_name;
    use hyppo_tensor::{Matrix, TaskKind};

    fn dataset(rows: usize) -> Dataset {
        Dataset::new(
            Matrix::filled(rows, 3, 0.5),
            vec![0.0; rows],
            (0..3).map(|i| format!("f{i}")).collect(),
            TaskKind::Regression,
        )
    }

    #[test]
    fn put_load_roundtrip_through_shards() {
        let mut store = SharedArtifactStore::new(4);
        let a = Artifact::Predictions(vec![1.0, 2.0, 3.0]);
        let name = dataset_name("x");
        let (bytes, cost) = store.put_artifact(name, &a);
        assert!(bytes > 0 && cost > 0.0);
        let (back, load_cost) = store.load_artifact(name).unwrap().unwrap();
        assert_eq!(a, back);
        assert!(load_cost > 0.0);
        assert_eq!(store.used_bytes(), bytes);
        assert_eq!(store.artifact_size(name), Some(bytes));
        assert_eq!(store.remove_artifact(name), Some(bytes));
        assert!(store.is_empty());
    }

    #[test]
    fn from_store_into_store_roundtrip() {
        let mut single = ArtifactStore::new();
        single.bandwidth = 1_048_576.0;
        single.register_dataset("d", dataset(10));
        for i in 0..20u64 {
            single.put(ArtifactName(i), &Artifact::Value(i as f64));
        }
        let shared = SharedArtifactStore::from_store(single.clone(), 4);
        assert_eq!(shared.len(), 20);
        assert!(shared.dataset_shape("d").is_some());
        let merged = shared.into_store();
        assert_eq!(merged.len(), 20);
        for i in 0..20u64 {
            let (a, _) = merged.load(ArtifactName(i)).unwrap().unwrap();
            assert_eq!(a, Artifact::Value(i as f64));
        }
        assert!((merged.bandwidth - single.bandwidth).abs() < 1e-9, "bandwidth model survives");
    }

    #[test]
    fn names_spread_across_shards() {
        let mut store = SharedArtifactStore::new(4);
        for i in 0..64u64 {
            store.put_artifact(ArtifactName(i), &Artifact::Value(0.0));
        }
        let counts: Vec<usize> = (0..4).map(|i| store.read_shard(i).len()).collect();
        assert!(counts.iter().all(|&c| c > 0), "all shards used: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 64);
    }

    #[test]
    fn concurrent_puts_from_many_threads_all_land() {
        let store = SharedArtifactStore::new(4);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let mut store = store.clone();
                s.spawn(move || {
                    for i in 0..25u64 {
                        let name = ArtifactName(t * 1000 + i);
                        store.put_artifact(name, &Artifact::Value(t as f64));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
        assert!(store.lock_wait_seconds() >= 0.0);
    }

    #[test]
    fn datasets_are_shared_between_clones() {
        let store = SharedArtifactStore::new(2);
        store.register_dataset("d", dataset(8));
        let clone = store.clone();
        assert_eq!(clone.dataset_shape("d"), Some((8, 3)));
        assert!(clone.load_dataset("d").is_some());
        assert_eq!(clone.total_dataset_bytes(), store.total_dataset_bytes());
    }
}
