//! Concurrent wavefront plan execution.
//!
//! [`execute_plan_parallel`] runs a plan's hyperedges on a pool of
//! `hyppo-sched` service-mode workers, dispatching every edge whose inputs
//! are available — the *ready frontier* of [`InDegreeTracker`] — instead
//! of firing edges one at a time. The coordinator (on the calling thread)
//! injects each wave as a batch; workers pull jobs from the scheduler —
//! injector first, then batch steals between siblings — run them, and send
//! results back over a channel. Independent branches of a plan (e.g. the
//! member fits of an ensemble) execute concurrently; joins wait for all
//! their inputs, exactly as B-connectivity prescribes.
//!
//! # Determinism
//!
//! The parallel executor produces artifacts **bit-identical** to the serial
//! [`execute_plan`](hyppo_core::execute_plan) on the same plan. Two plan
//! edges may cover the same node (equivalent alternatives); serially, the
//! first edge in execution order wins. The wavefront scheduler enforces the
//! same outcome with a *designated producer* per node — the first edge in
//! the serial order whose head contains it:
//!
//! - only a node's designated producer publishes its artifact;
//! - an edge is dispatched only once every tail artifact has been
//!   *published* (not merely when the tracker says some producer finished).
//!
//! The extra gate cannot deadlock: every designated producer of an edge's
//! tails precedes that edge in the serial order, so the earliest incomplete
//! edge always becomes dispatchable. Completion order still varies between
//! runs — only metric *ordering* (sorted by serial position) and artifact
//! *contents* are pinned. Which *worker* runs an edge is irrelevant to all
//! of this, which is why work stealing cannot perturb the outcome
//! (`DESIGN.md` §16).

use hyppo_core::augment::Augmentation;
use hyppo_core::executor::{ExecError, ExecOutcome, TaskMetric};
use hyppo_core::ArtifactStorage;
use hyppo_hypergraph::{execution_order, EdgeId, InDegreeTracker, NodeId};
use hyppo_ml::Artifact;
use hyppo_sched::{Scheduler, Step};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// What the wavefront scheduler observed while executing one plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct WavefrontMetrics {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Hyperedges dispatched (= executed when the plan succeeds).
    pub dispatched: usize,
    /// High-water mark of edges in flight (dispatched, not yet completed) —
    /// the plan's exploitable parallelism; equals achieved concurrency
    /// whenever the pool has at least that many workers.
    pub peak_concurrency: usize,
    /// Measured wall-clock seconds of the parallel section.
    pub wall_seconds: f64,
    /// Summed per-task seconds (what a serial run would accumulate).
    pub task_seconds: f64,
}

impl WavefrontMetrics {
    /// `task_seconds / wall_seconds` — how much faster than a serial replay
    /// of the same tasks the wavefront finished.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.task_seconds / self.wall_seconds
        } else {
            1.0
        }
    }
}

/// A serial-equivalent [`ExecOutcome`] plus scheduler observations.
#[derive(Debug, Default)]
pub struct ParallelOutcome {
    /// Artifacts and metrics, bit-identical to the serial executor's.
    pub outcome: ExecOutcome,
    /// What the scheduler saw.
    pub metrics: WavefrontMetrics,
}

struct Job {
    edge: EdgeId,
    inputs: Vec<Arc<Artifact>>,
}

type TaskResult = Result<(Vec<Artifact>, f64, u64), ExecError>;

/// Run one hyperedge: the Real-mode body of the serial executor.
fn run_edge(
    aug: &Augmentation,
    e: EdgeId,
    inputs: &[Arc<Artifact>],
    store: &impl ArtifactStorage,
) -> TaskResult {
    let label = aug.graph.edge(e);
    if label.is_load() {
        let head = aug.graph.head(e)[0];
        let name = aug.graph.node(head).name;
        let (artifact, cost) = match &label.dataset {
            Some(id) => {
                store.load_dataset(id).ok_or_else(|| ExecError::MissingDataset(id.clone()))?
            }
            None => store
                .load_artifact(name)
                .map_err(|err| ExecError::Corrupt(name, err))?
                .ok_or(ExecError::MissingArtifact(name))?,
        };
        let cells = artifact_cells(&artifact);
        Ok((vec![artifact], cost, cells))
    } else {
        let refs: Vec<&Artifact> = inputs.iter().map(Arc::as_ref).collect();
        let cells: u64 = refs.iter().map(|a| artifact_cells(a)).sum();
        let start = Instant::now();
        let outputs =
            hyppo_ml::execute(label.op, label.task, label.impl_index, &label.config, &refs)?;
        Ok((outputs, start.elapsed().as_secs_f64(), cells))
    }
}

/// Mirror of the serial executor's statistics bucket key.
fn artifact_cells(a: &Artifact) -> u64 {
    (a.size_bytes() as u64 / 8).max(1)
}

/// Execute `plan_edges` concurrently on `workers` threads (Real mode).
///
/// The result's [`ExecOutcome`] — artifacts, metric order, summed seconds —
/// matches what the serial executor would produce (see the module docs for
/// why); [`WavefrontMetrics`] reports what parallelism the plan exposed and
/// the wall-clock the pool actually took.
pub fn execute_plan_parallel<S: ArtifactStorage + Sync>(
    aug: &Augmentation,
    plan_edges: &[EdgeId],
    store: &S,
    workers: usize,
) -> Result<ParallelOutcome, ExecError> {
    let workers = workers.max(1);
    let serial = execution_order(&aug.graph, plan_edges, &[aug.source])?;
    // Designated producer of each node: first serial edge covering it.
    let mut designated: HashMap<NodeId, EdgeId> = HashMap::new();
    for &e in &serial {
        for &h in aug.graph.head(e) {
            designated.entry(h).or_insert(e);
        }
    }
    let serial_pos: HashMap<EdgeId, usize> =
        serial.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    let start = Instant::now();
    let mut tracker = InDegreeTracker::new(&aug.graph, plan_edges, &[aug.source]);
    let mut produced: HashMap<NodeId, Arc<Artifact>> = HashMap::new();
    let mut indexed_metrics: Vec<(usize, TaskMetric)> = Vec::with_capacity(serial.len());
    let mut outcome = ExecOutcome::default();
    let mut wave = WavefrontMetrics { workers, ..Default::default() };

    let sched: Scheduler<Job> = Scheduler::new(workers);
    let (done_tx, done_rx) = mpsc::channel::<(EdgeId, TaskResult)>();

    let mut first_err: Option<ExecError> = None;
    sched.run_with_driver(
        // Coordinator, on the calling thread. An edge is dispatchable when
        // the tracker says it is ready AND every tail artifact has been
        // published by its designated producer (loads draw on the store,
        // not on published artifacts). Each round's dispatchable edges are
        // injected as one batch; workers spread them by stealing.
        || {
            let mut waiting: Vec<EdgeId> = tracker.ready();
            let mut jobs: Vec<Job> = Vec::new();
            let mut in_flight = 0usize;
            loop {
                if first_err.is_none() {
                    let mut deferred = Vec::new();
                    for e in waiting.drain(..) {
                        let publishable = aug.graph.edge(e).is_load()
                            || aug.graph.tail(e).iter().all(|v| produced.contains_key(v));
                        if publishable {
                            let inputs: Vec<Arc<Artifact>> = if aug.graph.edge(e).is_load() {
                                Vec::new()
                            } else {
                                aug.graph.tail(e).iter().map(|v| produced[v].clone()).collect()
                            };
                            jobs.push(Job { edge: e, inputs });
                        } else {
                            deferred.push(e);
                        }
                    }
                    waiting = deferred;
                    in_flight += jobs.len();
                    wave.dispatched += jobs.len();
                    wave.peak_concurrency = wave.peak_concurrency.max(in_flight);
                    sched.inject_batch(jobs.drain(..));
                }
                if in_flight == 0 {
                    break;
                }
                let Ok((e, result)) = done_rx.recv() else { break };
                in_flight -= 1;
                match result {
                    Err(err) => {
                        // Remember the first failure, stop dispatching, and
                        // drain what is already running.
                        first_err.get_or_insert(err);
                    }
                    Ok((outputs, cost_seconds, input_cells)) => {
                        for (artifact, &head) in outputs.into_iter().zip(aug.graph.head(e)) {
                            if designated.get(&head) == Some(&e) {
                                let name = aug.graph.node(head).name;
                                let artifact = Arc::new(artifact);
                                outcome
                                    .artifacts
                                    .entry(name)
                                    .or_insert_with(|| artifact.as_ref().clone());
                                produced.insert(head, artifact);
                            }
                        }
                        let label = aug.graph.edge(e);
                        indexed_metrics.push((
                            serial_pos[&e],
                            TaskMetric {
                                edge: e,
                                op: label.op,
                                task: label.task,
                                impl_index: label.impl_index,
                                cost_seconds,
                                input_cells,
                                is_load: label.is_load(),
                            },
                        ));
                        waiting.extend(tracker.complete(&aug.graph, e));
                    }
                }
            }
            // run_with_driver shuts the scheduler down on return (also on
            // unwind), releasing any parked worker.
        },
        // Service-mode worker: run jobs until shutdown; results flow back
        // over the channel (`Sender` is `Sync`, shared by reference).
        |mut w| loop {
            match w.next_step() {
                Step::Task(job) => {
                    let result = run_edge(aug, job.edge, &job.inputs, store);
                    if done_tx.send((job.edge, result)).is_err() {
                        return;
                    }
                }
                Step::Idle(token) => w.park(token),
                Step::Shutdown => return,
            }
        },
    );

    if let Some(err) = first_err {
        return Err(err);
    }
    debug_assert!(tracker.is_done(), "wavefront drained with an incomplete plan");
    wave.wall_seconds = start.elapsed().as_secs_f64();

    // Serial-equivalent metric order (and therefore an identical f64
    // summation order for the total).
    indexed_metrics.sort_by_key(|&(pos, _)| pos);
    for (_, m) in indexed_metrics {
        outcome.total_seconds += m.cost_seconds;
        outcome.metrics.push(m);
    }
    wave.task_seconds = outcome.total_seconds;
    Ok(ParallelOutcome { outcome, metrics: wave })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_core::augment::{augment, AugmentOptions};
    use hyppo_core::codec;
    use hyppo_core::executor::ExecMode;
    use hyppo_core::{execute_plan, ArtifactStore, History};
    use hyppo_pipeline::{build_pipeline, Dictionary};
    use hyppo_workloads::ensemble_wl::wide_ensemble_spec;
    use hyppo_workloads::taxi;

    fn wide_fixture(members: usize) -> (Augmentation, ArtifactStore) {
        let spec = wide_ensemble_spec("taxi", members, 11);
        let pipeline = build_pipeline(spec);
        let history = History::new();
        let opts = AugmentOptions { dictionary_alternatives: false, use_history: false };
        let aug = augment(&pipeline, &history, &Dictionary::full(), opts);
        let mut store = ArtifactStore::new();
        store.register_dataset("taxi", taxi::generate(300, 5));
        (aug, store)
    }

    fn plan_of(aug: &Augmentation) -> Vec<EdgeId> {
        aug.graph.edge_ids().collect()
    }

    #[test]
    fn parallel_artifacts_are_bit_identical_to_serial() {
        let (aug, store) = wide_fixture(4);
        let plan = plan_of(&aug);
        let costs = vec![0.0; aug.graph.edge_bound()];
        let serial = execute_plan(&aug, &plan, &store, ExecMode::Real, &costs).unwrap();
        let parallel = execute_plan_parallel(&aug, &plan, &store, 4).unwrap();

        assert_eq!(serial.artifacts.len(), parallel.outcome.artifacts.len());
        for (name, artifact) in &serial.artifacts {
            let other = parallel.outcome.artifacts.get(name).expect("artifact missing");
            assert_eq!(
                codec::encode(artifact),
                codec::encode(other),
                "artifact {name} differs between serial and parallel execution"
            );
        }
    }

    #[test]
    fn metric_order_matches_serial_execution_order() {
        let (aug, store) = wide_fixture(3);
        let plan = plan_of(&aug);
        let costs = vec![0.0; aug.graph.edge_bound()];
        let serial = execute_plan(&aug, &plan, &store, ExecMode::Real, &costs).unwrap();
        let parallel = execute_plan_parallel(&aug, &plan, &store, 8).unwrap();
        let serial_edges: Vec<EdgeId> = serial.metrics.iter().map(|m| m.edge).collect();
        let parallel_edges: Vec<EdgeId> = parallel.outcome.metrics.iter().map(|m| m.edge).collect();
        assert_eq!(serial_edges, parallel_edges);
        assert_eq!(parallel.metrics.dispatched, plan.len());
    }

    #[test]
    fn wide_plan_exposes_concurrency() {
        let (aug, store) = wide_fixture(6);
        let plan = plan_of(&aug);
        let parallel = execute_plan_parallel(&aug, &plan, &store, 4).unwrap();
        assert!(
            parallel.metrics.peak_concurrency >= 2,
            "six independent member fits must overlap (peak {})",
            parallel.metrics.peak_concurrency
        );
        assert!(parallel.metrics.wall_seconds > 0.0);
        assert!(parallel.metrics.task_seconds > 0.0);
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let (aug, store) = wide_fixture(2);
        let plan = plan_of(&aug);
        let parallel = execute_plan_parallel(&aug, &plan, &store, 1).unwrap();
        assert_eq!(parallel.outcome.metrics.len(), plan.len());
        assert_eq!(parallel.metrics.workers, 1);
    }

    #[test]
    fn missing_dataset_fails_cleanly_without_hanging() {
        let (aug, _) = wide_fixture(3);
        let empty = ArtifactStore::new();
        let plan = plan_of(&aug);
        let err = execute_plan_parallel(&aug, &plan, &empty, 4).unwrap_err();
        assert!(matches!(err, ExecError::MissingDataset(_)));
    }

    #[test]
    fn incomplete_plan_is_a_topo_error() {
        let (aug, store) = wide_fixture(2);
        let plan: Vec<EdgeId> =
            aug.graph.edge_ids().filter(|&e| !aug.graph.edge(e).is_load()).collect();
        let err = execute_plan_parallel(&aug, &plan, &store, 2).unwrap_err();
        assert!(matches!(err, ExecError::Topo(_)));
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let (aug, store) = wide_fixture(2);
        let out = execute_plan_parallel(&aug, &[], &store, 4).unwrap();
        assert!(out.outcome.artifacts.is_empty());
        assert_eq!(out.metrics.dispatched, 0);
    }
}
