//! Concurrent exploratory sessions over one shared HYPPO state.
//!
//! [`SharedHyppo`] is the thread-safe counterpart of the core
//! [`Hyppo`] facade: history and cost estimator live behind [`RwLock`]s,
//! artifacts in a sharded [`SharedArtifactStore`], and every submission
//! runs its plan on the wavefront executor. [`SharedHyppo::run_sessions_concurrent`]
//! drives N exploratory sessions — each a sequence of pipeline submissions —
//! on N threads against that single shared state, so one analyst's
//! materialized artifacts immediately benefit everyone else's plans (the
//! paper's collaborative-notebook setting).
//!
//! # Locking protocol
//!
//! Planning takes the history and estimator *read* locks; recording and
//! materialization take both *write* locks, always acquiring history before
//! estimator — one fixed order, no deadlock. Materialization runs inside
//! that critical section so budget accounting (`used_bytes` vs budget)
//! is never interleaved between sessions.
//!
//! Concurrent eviction can still invalidate a plan *between* planning and
//! execution: session A plans a load of an artifact that session B evicts
//! first. The executor surfaces this as a missing-artifact error and the
//! driver simply replans — the eviction already cleared the history flag,
//! so the new plan routes around the evicted artifact.

use crate::executor::{execute_plan_parallel, WavefrontMetrics};
use crate::store::{SharedArtifactStore, DEFAULT_SHARDS};
use hyppo_core::augment::{self, annotate_costs, Augmentation};
use hyppo_core::durable::{DurabilityHook, DurableEvent};
use hyppo_core::executor::{execute_plan, ExecError, ExecMode};
use hyppo_core::materialize::{MaterializeConfig, Materializer};
use hyppo_core::monitor::record_outcome;
use hyppo_core::optimizer::batch::BatchItem;
use hyppo_core::optimizer::{Plan, PlanRequest};
use hyppo_core::system::{BatchRunReport, Hyppo, HyppoConfig, RunReport, SubmitError};
use hyppo_core::{ArtifactStore, CostEstimator, History, PlannerBoundsCache, Session};
use hyppo_pipeline::{build_pipeline, ArtifactName, PipelineSpec};
use hyppo_tensor::Dataset;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How often a submission replans after losing a race with eviction.
const MAX_REPLANS: usize = 2;

/// Thread-safe HYPPO: shared history, estimator, and artifact store, with
/// wavefront plan execution.
#[derive(Debug)]
pub struct SharedHyppo {
    /// Configuration (shared read-only across sessions).
    pub config: HyppoConfig,
    history: RwLock<History>,
    estimator: RwLock<CostEstimator>,
    store: SharedArtifactStore,
    cumulative_seconds: Mutex<f64>,
    /// Wall-clock nanos spent waiting on the history/estimator locks.
    lock_wait_nanos: AtomicU64,
    /// Planner heuristic-bounds cache, shared across sessions — concurrent
    /// submissions over the same (unchanged) history reuse one bounds
    /// computation instead of recomputing per plan.
    bounds_cache: Arc<PlannerBoundsCache>,
    /// Durable-event sink. Drained while the history write lock is held,
    /// so the appended order is the linearization order of the mutations.
    durability: Mutex<Option<Box<dyn DurabilityHook>>>,
}

/// What one session (a sequence of submissions on one thread) did.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Session index (position in the submitted batch).
    pub session: usize,
    /// Per-submission reports, in submission order.
    pub runs: Vec<RunReport>,
    /// Wall-clock seconds the session took end to end.
    pub wall_seconds: f64,
    /// Summed per-task seconds across the session's plans.
    pub task_seconds: f64,
    /// Largest in-flight edge count any of the session's plans reached.
    pub peak_concurrency: usize,
}

/// Aggregate observations across a concurrent batch of sessions.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeMetrics {
    /// Sessions completed.
    pub sessions: usize,
    /// Hyperedges executed across all sessions.
    pub tasks_executed: usize,
    /// How many of them were loads (dataset or materialized artifact) —
    /// the cache hits of cross-session reuse.
    pub loads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Summed per-task seconds — what one thread replaying every task
    /// serially would accumulate.
    pub task_seconds: f64,
    /// Wall-clock seconds threads spent waiting on locks (store shards +
    /// history/estimator).
    pub lock_wait_seconds: f64,
    /// Largest in-flight edge count any plan reached.
    pub peak_concurrency: usize,
}

impl RuntimeMetrics {
    /// `task_seconds / wall_seconds` — the batch's concurrency payoff.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.task_seconds / self.wall_seconds
        } else {
            1.0
        }
    }
}

/// Everything a concurrent batch produced.
#[derive(Clone, Debug, Default)]
pub struct SessionsOutcome {
    /// One report per session, in input order.
    pub reports: Vec<SessionReport>,
    /// Aggregate metrics.
    pub metrics: RuntimeMetrics,
}

impl SharedHyppo {
    /// Fresh shared system with [`DEFAULT_SHARDS`] store shards.
    pub fn new(config: HyppoConfig) -> Self {
        SharedHyppo::from_parts(
            config,
            History::new(),
            CostEstimator::new(),
            ArtifactStore::new(),
            DEFAULT_SHARDS,
        )
    }

    /// Wrap existing state (typically moved out of a serial [`Hyppo`]).
    pub fn from_parts(
        config: HyppoConfig,
        history: History,
        estimator: CostEstimator,
        store: ArtifactStore,
        n_shards: usize,
    ) -> Self {
        SharedHyppo {
            config,
            history: RwLock::new(history),
            estimator: RwLock::new(estimator),
            store: SharedArtifactStore::from_store(store, n_shards),
            cumulative_seconds: Mutex::new(0.0),
            lock_wait_nanos: AtomicU64::new(0),
            bounds_cache: Arc::new(PlannerBoundsCache::new()),
            durability: Mutex::new(None),
        }
    }

    /// Attach a durability hook and start journaling history mutations and
    /// estimator observations. Every submission drains its events into the
    /// hook inside the history write-lock critical section, so replaying
    /// the log serially rebuilds the state this concurrent system reached.
    pub fn attach_durability(&self, hook: Box<dyn DurabilityHook>) {
        self.locked_history().enable_event_journal();
        *self.durability.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
    }

    /// Detach and return the durability hook, if any. Journaled events not
    /// yet flushed stay queued in the history journal.
    pub fn detach_durability(&self) -> Option<Box<dyn DurabilityHook>> {
        self.durability.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Drain queued events (e.g. from [`SharedHyppo::register_dataset`])
    /// into the attached durability hook.
    pub fn flush_durability(&self) -> std::io::Result<()> {
        let mut history = self.locked_history();
        self.drain_events(&mut history)
    }

    /// Drain the history journal into the hook. Callers hold the history
    /// write lock (`history` proves it), which makes the append order the
    /// linearization order.
    fn drain_events(&self, history: &mut History) -> std::io::Result<()> {
        // hyppo-lint: allow(nested-lock-acquire) hook mutex nests inside the
        // history write lock in the fixed order history → durability; no
        // other site acquires them in reverse
        let mut guard = self.durability.lock().unwrap_or_else(|e| e.into_inner());
        let Some(hook) = guard.as_mut() else {
            return Ok(());
        };
        let events = history.take_events();
        if events.is_empty() {
            return Ok(());
        }
        hook.append(&events)
    }

    /// Tear down into `(history, estimator, store, cumulative_seconds)` —
    /// the inverse of [`SharedHyppo::from_parts`].
    pub fn into_parts(self) -> (History, CostEstimator, ArtifactStore, f64) {
        let history = self.history.into_inner().unwrap_or_else(|e| e.into_inner());
        let estimator = self.estimator.into_inner().unwrap_or_else(|e| e.into_inner());
        let cumulative = *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner());
        (history, estimator, self.store.into_store(), cumulative)
    }

    /// Register a raw dataset as loadable from the source.
    pub fn register_dataset(&self, id: &str, dataset: Dataset) {
        let size = dataset.size_bytes() as u64;
        self.store.register_dataset(id, dataset);
        self.locked_history().record_dataset(id, size);
    }

    /// Cumulative execution seconds across all submissions so far.
    pub fn cumulative_seconds(&self) -> f64 {
        *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bounds-cache counters across all sessions sharing this system:
    /// hits, from-scratch recomputes, and journal-repaired patch-forwards.
    pub fn bounds_stats(&self) -> hyppo_core::BoundsCacheStats {
        self.bounds_cache.stats()
    }

    /// Wall-clock seconds spent waiting on any lock (store shards plus
    /// history/estimator).
    pub fn lock_wait_seconds(&self) -> f64 {
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge; a torn
        // sum across in-flight adds is acceptable for metrics
        self.store.lock_wait_seconds() + self.lock_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    fn locked_history(&self) -> std::sync::RwLockWriteGuard<'_, History> {
        let start = Instant::now();
        let guard = self.history.write().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start);
        guard
    }

    fn record_wait(&self, start: Instant) {
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge only
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Submit one pipeline, executing its plan on `workers` wavefront
    /// threads. Safe to call from many threads at once.
    pub fn submit_shared(
        &self,
        spec: PipelineSpec,
        workers: usize,
    ) -> Result<(RunReport, WavefrontMetrics), SubmitError> {
        let pipeline = build_pipeline(spec);
        self.run_shared(workers, |history| {
            Some(augment::augment(&pipeline, history, &self.config.dictionary, self.config.augment))
        })
    }

    /// Retrieve previously computed artifacts by name (paper Scenario 2),
    /// planning over the shared history's alternatives only. Safe to call
    /// from many threads at once.
    pub fn retrieve_shared(
        &self,
        names: &[ArtifactName],
        workers: usize,
    ) -> Result<(RunReport, WavefrontMetrics), SubmitError> {
        self.run_shared(workers, |history| augment::augment_request(history, names))
    }

    /// The shared plan → execute → record loop behind [`submit_shared`] and
    /// [`retrieve_shared`]. `build` constructs the augmentation under the
    /// history read lock (returning `None` when no plan can exist).
    ///
    /// [`submit_shared`]: SharedHyppo::submit_shared
    /// [`retrieve_shared`]: SharedHyppo::retrieve_shared
    fn run_shared(
        &self,
        workers: usize,
        build: impl Fn(&History) -> Option<Augmentation>,
    ) -> Result<(RunReport, WavefrontMetrics), SubmitError> {
        let mut replans = 0;
        loop {
            let opt_start = Instant::now();

            // Plan under read locks: history → estimator.
            let (aug, costs) = {
                let start = Instant::now();
                let history = self.history.read().unwrap_or_else(|e| e.into_inner());
                self.record_wait(start);
                let start = Instant::now();
                // hyppo-lint: allow(nested-lock-acquire) intentional nesting in
                // the fixed global order history → estimator; every acquisition
                // site follows it, so no cycle is possible
                let estimator = self.estimator.read().unwrap_or_else(|e| e.into_inner());
                self.record_wait(start);
                let aug = build(&history).ok_or(SubmitError::NoPlan)?;
                let costs = annotate_costs(&aug, &estimator, &self.store);
                (aug, costs)
            };
            let plan = self
                .config
                .search
                .clone()
                .bounds_cache(Arc::clone(&self.bounds_cache))
                .plan(
                    &aug.graph,
                    PlanRequest::new(&costs, aug.source, &aug.targets)
                        .with_new_tasks(&aug.new_tasks),
                )
                .ok_or(SubmitError::NoPlan)?;
            let optimize_seconds = opt_start.elapsed().as_secs_f64();

            match self.execute_and_record(&aug, &costs, &plan, workers, optimize_seconds) {
                // Lost a race with another session's eviction: the
                // artifact this plan meant to load is gone. Its history
                // flag was cleared by the same eviction, so replanning
                // routes around it.
                Err(SubmitError::Exec(ExecError::MissingArtifact(_))) if replans < MAX_REPLANS => {
                    replans += 1;
                    continue;
                }
                other => return other,
            }
        }
    }

    /// Execute a planned augmentation and absorb its outcome: run the plan
    /// on the wavefront executor (or the virtual clock), record into
    /// history/estimator, journal durable events, and materialize — all
    /// under the fixed history → estimator write-lock order. Shared by
    /// [`run_shared`](SharedHyppo::run_shared) (which wraps it in the
    /// eviction-race replan loop) and
    /// [`submit_batch_shared`](SharedHyppo::submit_batch_shared) (which
    /// plans the whole batch up front and finishes items in order).
    fn execute_and_record(
        &self,
        aug: &Augmentation,
        costs: &[f64],
        plan: &Plan,
        workers: usize,
        optimize_seconds: f64,
    ) -> Result<(RunReport, WavefrontMetrics), SubmitError> {
        // Execute without holding any coarse lock.
        let executed = if self.config.mode == ExecMode::Real {
            execute_plan_parallel(aug, &plan.edges, &self.store, workers)
        } else {
            execute_plan(aug, &plan.edges, &self.store, ExecMode::Simulated, costs).map(|outcome| {
                let wave = WavefrontMetrics {
                    workers: 1,
                    dispatched: outcome.metrics.len(),
                    peak_concurrency: 1,
                    wall_seconds: outcome.total_seconds,
                    task_seconds: outcome.total_seconds,
                };
                crate::executor::ParallelOutcome { outcome, metrics: wave }
            })
        };
        let parallel = executed.map_err(SubmitError::Exec)?;
        let outcome = parallel.outcome;
        let target_names: Vec<ArtifactName> =
            aug.targets.iter().map(|&t| aug.graph.node(t).name).collect();

        // Record + materialize under write locks: history → estimator.
        let (report_mat, durable) = {
            let mut history = self.locked_history();
            let start = Instant::now();
            let mut estimator = self.estimator.write().unwrap_or_else(|e| e.into_inner());
            self.record_wait(start);
            record_outcome(aug, &outcome, &target_names, &mut history, &mut estimator);
            // Mirror estimator observations into the durable event
            // stream (see the serial facade for the rationale).
            if history.journal_enabled() {
                for m in &outcome.metrics {
                    if !m.is_load {
                        history.journal_event(DurableEvent::Observe {
                            op: m.op,
                            task: m.task,
                            impl_index: m.impl_index,
                            input_cells: m.input_cells,
                            seconds: m.cost_seconds,
                        });
                    }
                }
            }
            let report_mat = if self.config.budget_bytes > 0 {
                let materializer = Materializer::new(MaterializeConfig {
                    budget_bytes: self.config.budget_bytes,
                    locality: self.config.locality,
                });
                materializer.run(
                    &mut history,
                    &mut self.store.clone(),
                    &estimator,
                    &outcome.artifacts,
                )
            } else {
                Default::default()
            };
            // Drain before releasing the write lock: WAL order must be
            // the lock-acquisition (linearization) order.
            let durable = self.drain_events(&mut history);
            (report_mat, durable)
        };
        durable.map_err(SubmitError::Durability)?;

        *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner()) += outcome.total_seconds;
        let values: HashMap<ArtifactName, f64> =
            target_names.iter().filter_map(|&n| outcome.value(n).map(|v| (n, v))).collect();
        let report = RunReport {
            planned_cost: plan.cost,
            execution_seconds: outcome.total_seconds,
            optimize_seconds,
            tasks_executed: outcome.metrics.len(),
            loads: outcome.metrics.iter().filter(|m| m.is_load).count(),
            new_tasks: aug.new_tasks.len(),
            expansions: plan.expansions,
            pops: plan.pops,
            stored: report_mat.stored.len(),
            evicted: report_mat.evicted.len(),
            values,
        };
        Ok((report, parallel.metrics))
    }

    /// Submit K pipelines as one jointly planned batch (the concurrent
    /// counterpart of [`Hyppo::submit_batch`]): augment and cost-annotate
    /// all K against one history/estimator read-lock snapshot, plan them
    /// together via
    /// [`Planner::plan_batch`](hyppo_core::optimizer::Planner::plan_batch)
    /// (dedup + shared-prefix bound amortization through the shared bounds
    /// cache), then execute and record each item in order on `workers`
    /// wavefront threads.
    ///
    /// Planning is all-or-nothing ([`SubmitError::NoPlan`] before anything
    /// executes). An item that loses a race with eviction — its own batch's
    /// materialization or a concurrent session's — falls back to a full
    /// [`submit_shared`](SharedHyppo::submit_shared) replan, counted in
    /// [`BatchRunReport::replans`].
    pub fn submit_batch_shared(
        &self,
        specs: Vec<PipelineSpec>,
        workers: usize,
    ) -> Result<BatchRunReport, SubmitError> {
        if specs.is_empty() {
            return Ok(BatchRunReport::default());
        }
        let stats_before = self.bounds_stats();
        let opt_start = Instant::now();
        let pipelines: Vec<_> = specs.into_iter().map(build_pipeline).collect();

        // Augment + annotate every item against ONE snapshot, under the
        // fixed read-lock order history → estimator.
        let (augs, costs) = {
            let start = Instant::now();
            let history = self.history.read().unwrap_or_else(|e| e.into_inner());
            self.record_wait(start);
            let start = Instant::now();
            // hyppo-lint: allow(nested-lock-acquire) intentional nesting in
            // the fixed global order history → estimator; every acquisition
            // site follows it, so no cycle is possible
            let estimator = self.estimator.read().unwrap_or_else(|e| e.into_inner());
            self.record_wait(start);
            let augs: Vec<Augmentation> = pipelines
                .iter()
                .map(|p| {
                    augment::augment(p, &history, &self.config.dictionary, self.config.augment)
                })
                .collect();
            let costs: Vec<Vec<f64>> =
                augs.iter().map(|a| annotate_costs(a, &estimator, &self.store)).collect();
            (augs, costs)
        };
        let planner = self.config.search.clone().bounds_cache(Arc::clone(&self.bounds_cache));
        let items: Vec<BatchItem<'_, _, _>> = augs
            .iter()
            .zip(&costs)
            .map(|(a, c)| {
                BatchItem::new(
                    &a.graph,
                    PlanRequest::new(c, a.source, &a.targets).with_new_tasks(&a.new_tasks),
                )
            })
            .collect();
        let batch = planner.plan_batch(&items);
        drop(items);
        let plans: Vec<Plan> = batch
            .plans
            .iter()
            .map(|p| p.clone().ok_or(SubmitError::NoPlan))
            .collect::<Result<_, _>>()?;
        let shared_artifacts: Vec<ArtifactName> = batch
            .shared_edges
            .iter()
            .filter(|e| e.index() < augs[0].graph.edge_bound())
            .flat_map(|&e| augs[0].graph.edge_ref(e).head.iter())
            .map(|&n| augs[0].graph.node(n).name)
            .collect();
        let optimize_share = opt_start.elapsed().as_secs_f64() / augs.len() as f64;

        let mut reports = Vec::with_capacity(augs.len());
        let mut replans = 0usize;
        for (i, (aug, plan)) in augs.iter().zip(&plans).enumerate() {
            match self.execute_and_record(aug, &costs[i], plan, workers, optimize_share) {
                Ok((report, _)) => reports.push(report),
                Err(SubmitError::Exec(ExecError::MissingArtifact(_))) => {
                    // Eviction (this batch's own materialization or a
                    // concurrent session's) invalidated the snapshot plan;
                    // fall back to the full replan loop.
                    replans += 1;
                    let (report, _) = self.run_shared(workers, |history| {
                        Some(augment::augment(
                            &pipelines[i],
                            history,
                            &self.config.dictionary,
                            self.config.augment,
                        ))
                    })?;
                    reports.push(report);
                }
                Err(e) => return Err(e),
            }
        }
        let bounds_delta = self.bounds_stats().delta_since(&stats_before);
        Ok(BatchRunReport { reports, batch: batch.stats, bounds_delta, shared_artifacts, replans })
    }

    /// Run every session on its own thread against this shared state.
    ///
    /// Each session is a sequence of pipeline submissions executed in
    /// order; sessions interleave freely, sharing history, estimator, and
    /// materialized artifacts. Fails with the first session error, after
    /// every session thread has finished.
    pub fn run_sessions_concurrent(
        &self,
        sessions: Vec<Vec<PipelineSpec>>,
        workers_per_plan: usize,
    ) -> Result<SessionsOutcome, SubmitError> {
        let lock_wait_before = self.lock_wait_seconds();
        let start = Instant::now();
        let results: Vec<Result<SessionReport, SubmitError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .into_iter()
                .enumerate()
                .map(|(session, specs)| {
                    scope.spawn(move || {
                        let session_start = Instant::now();
                        let mut report = SessionReport { session, ..Default::default() };
                        for spec in specs {
                            let (run, wave) = self.submit_shared(spec, workers_per_plan)?;
                            report.task_seconds += wave.task_seconds;
                            report.peak_concurrency =
                                report.peak_concurrency.max(wave.peak_concurrency);
                            report.runs.push(run);
                        }
                        report.wall_seconds = session_start.elapsed().as_secs_f64();
                        Ok(report)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect()
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        let metrics = RuntimeMetrics {
            sessions: reports.len(),
            tasks_executed: reports
                .iter()
                .flat_map(|r| r.runs.iter())
                .map(|run| run.tasks_executed)
                .sum(),
            loads: reports.iter().flat_map(|r| r.runs.iter()).map(|run| run.loads).sum(),
            wall_seconds,
            task_seconds: reports.iter().map(|r| r.task_seconds).sum(),
            lock_wait_seconds: self.lock_wait_seconds() - lock_wait_before,
            peak_concurrency: reports.iter().map(|r| r.peak_concurrency).max().unwrap_or(0),
        };
        Ok(SessionsOutcome { reports, metrics })
    }
}

/// Concurrent-session entry point for the serial [`Hyppo`] facade.
///
/// Moves the system's state into a [`SharedHyppo`], runs the batch, and
/// moves the (updated) state back — so a notebook using the serial facade
/// can fan out a batch of sessions and keep exploring serially afterwards.
pub trait ConcurrentSessions {
    /// Run `sessions` concurrently, each plan on `workers_per_plan`
    /// wavefront workers.
    fn run_sessions_concurrent(
        &mut self,
        sessions: Vec<Vec<PipelineSpec>>,
        workers_per_plan: usize,
    ) -> Result<SessionsOutcome, SubmitError>;
}

impl ConcurrentSessions for Hyppo {
    fn run_sessions_concurrent(
        &mut self,
        sessions: Vec<Vec<PipelineSpec>>,
        workers_per_plan: usize,
    ) -> Result<SessionsOutcome, SubmitError> {
        let history = std::mem::replace(&mut self.history, History::new());
        let estimator = std::mem::replace(&mut self.estimator, CostEstimator::new());
        let store = std::mem::replace(&mut self.store, ArtifactStore::new());
        let shared =
            SharedHyppo::from_parts(self.config.clone(), history, estimator, store, DEFAULT_SHARDS);
        let result = shared.run_sessions_concurrent(sessions, workers_per_plan);
        // State flows back whether the batch succeeded or not — completed
        // sessions' history must never be lost.
        let (history, estimator, store, executed_seconds) = shared.into_parts();
        self.history = history;
        self.estimator = estimator;
        self.store = store;
        self.cumulative_seconds += executed_seconds;
        // The moved-back history carries any events the batch journaled
        // (the shared system had no hook of its own); drain them into the
        // serial facade's hook so the batch becomes durable too.
        self.flush_durability().map_err(SubmitError::Durability)?;
        result
    }
}

/// One analyst's session against a [`SharedHyppo`], behind the core
/// [`Session`] trait — so harnesses written against `Session` (the baselines
/// crate's `SessionMethod`, benches, examples) drive the concurrent backend
/// exactly like the serial one.
///
/// Generic over how the backend is held: own it (`SharedSession<SharedHyppo>`,
/// the default), or share it (`SharedSession<Arc<SharedHyppo>>`) so several
/// sessions hit one state — the collaborative setting.
#[derive(Debug)]
pub struct SharedSession<T = SharedHyppo> {
    backend: T,
    workers: usize,
}

impl<T: std::borrow::Borrow<SharedHyppo>> SharedSession<T> {
    /// Drive `backend`, executing each plan on `workers` wavefront threads.
    pub fn new(backend: T, workers: usize) -> Self {
        SharedSession { backend, workers: workers.max(1) }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &SharedHyppo {
        self.backend.borrow()
    }

    /// Unwrap the backend.
    pub fn into_inner(self) -> T {
        self.backend
    }
}

impl<T: std::borrow::Borrow<SharedHyppo>> Session for SharedSession<T> {
    fn backend_name(&self) -> &'static str {
        "HYPPO-shared"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.backend().register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<RunReport, SubmitError> {
        self.backend().submit_shared(spec, self.workers).map(|(report, _)| report)
    }

    fn submit_batch(&mut self, specs: Vec<PipelineSpec>) -> Result<Vec<RunReport>, SubmitError> {
        self.backend().submit_batch_shared(specs, self.workers).map(|b| b.reports)
    }

    fn retrieve(&mut self, names: &[ArtifactName]) -> Result<RunReport, SubmitError> {
        self.backend().retrieve_shared(names, self.workers).map(|(report, _)| report)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.backend().cumulative_seconds()
    }

    fn budget_bytes(&self) -> u64 {
        self.backend().config.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.backend().history.read().unwrap_or_else(|e| e.into_inner()).artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_workloads::ensemble_wl::wide_ensemble_spec;
    use hyppo_workloads::taxi;

    fn config(budget: u64) -> HyppoConfig {
        HyppoConfig { budget_bytes: budget, ..Default::default() }
    }

    fn sessions(n: usize) -> Vec<Vec<PipelineSpec>> {
        // Sessions share members (seeds overlap), so cross-session reuse
        // has something to find.
        (0..n).map(|i| vec![wide_ensemble_spec("taxi", 3 + i % 2, 7 + i as u64 % 2)]).collect()
    }

    #[test]
    fn four_sessions_share_one_store_without_deadlock() {
        let shared = SharedHyppo::new(config(64 * 1024 * 1024));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let outcome = shared.run_sessions_concurrent(sessions(4), 2).unwrap();
        assert_eq!(outcome.metrics.sessions, 4);
        assert_eq!(outcome.reports.len(), 4);
        assert!(outcome.metrics.tasks_executed > 0);
        assert!(outcome.metrics.wall_seconds > 0.0);
        assert!(outcome.metrics.speedup() > 0.0);

        // No lost materializations: every artifact the history believes is
        // materialized must actually be in the store.
        let (history, _, store, cumulative) = shared.into_parts();
        for name in history.materialized() {
            assert!(store.contains(name), "history says {name} is materialized; store disagrees");
        }
        assert!(cumulative > 0.0);
    }

    #[test]
    fn budget_is_respected_under_concurrency() {
        let budget = 32 * 1024;
        let shared = SharedHyppo::new(config(budget));
        shared.register_dataset("taxi", taxi::generate(200, 5));
        shared.run_sessions_concurrent(sessions(4), 2).unwrap();
        let (_, _, store, _) = shared.into_parts();
        assert!(
            store.used_bytes() <= budget,
            "store uses {} > budget {budget}",
            store.used_bytes()
        );
    }

    #[test]
    fn concurrent_sessions_feed_later_serial_reuse() {
        let mut sys = Hyppo::new(config(64 * 1024 * 1024));
        sys.register_dataset("taxi", taxi::generate(300, 5));
        let outcome = sys.run_sessions_concurrent(sessions(4), 2).unwrap();
        assert_eq!(outcome.metrics.sessions, 4);
        // State moved back: the serial facade sees the concurrent history.
        assert!(sys.history.artifact_count() > 0);
        assert!(sys.cumulative_seconds > 0.0);
        // A serial resubmission of a session's pipeline now reuses
        // materialized artifacts.
        let report = sys.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        assert!(report.loads >= 1, "resubmission should load materialized artifacts");
    }

    #[test]
    fn missing_dataset_fails_but_preserves_state() {
        let mut sys = Hyppo::new(config(0));
        sys.register_dataset("taxi", taxi::generate(100, 5));
        let batch =
            vec![vec![wide_ensemble_spec("taxi", 2, 1)], vec![wide_ensemble_spec("nope", 2, 1)]];
        let err = sys.run_sessions_concurrent(batch, 2);
        assert!(err.is_err());
        // The failed batch must not have wiped the moved-out state.
        assert!(sys.store.dataset("taxi").is_some());
    }

    #[test]
    fn shared_session_drives_the_concurrent_backend() {
        let mut session = SharedSession::new(SharedHyppo::new(config(64 * 1024 * 1024)), 2);
        session.register_dataset("taxi", taxi::generate(300, 5));
        let report = session.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        assert!(report.tasks_executed > 0);
        assert_eq!(session.backend_name(), "HYPPO-shared");
        assert!(session.cumulative_seconds() > 0.0);
        assert!(session.history_artifacts() > 0);

        // Scenario 2 against the shared backend: retrieve recorded value
        // artifacts by name.
        let names: Vec<ArtifactName> = {
            let shared = session.backend();
            let history = shared.history.read().unwrap();
            let names: Vec<ArtifactName> = history
                .artifact_names()
                .filter(|&n| {
                    let node = history.node_of(n).unwrap();
                    history.graph.node(node).role == hyppo_pipeline::ArtifactRole::Value
                })
                .collect();
            names
        };
        assert!(!names.is_empty());
        let report = session.retrieve(&names).unwrap();
        assert!(report.tasks_executed >= 1);
        assert_eq!(report.values.len(), names.len());
    }

    #[test]
    fn shared_sessions_can_share_one_backend_through_an_arc() {
        let shared = Arc::new(SharedHyppo::new(config(64 * 1024 * 1024)));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let mut a = SharedSession::new(Arc::clone(&shared), 2);
        let mut b = SharedSession::new(Arc::clone(&shared), 2);
        a.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        let report = b.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        assert!(report.loads >= 1, "second session should reuse the first's artifacts");
    }

    #[test]
    fn bounds_cache_is_shared_and_counters_account_for_every_lookup() {
        let shared = Arc::new(SharedHyppo::new(config(64 * 1024 * 1024)));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let mut a = SharedSession::new(Arc::clone(&shared), 2);
        let mut b = SharedSession::new(Arc::clone(&shared), 2);
        a.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        b.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        let stats = shared.bounds_stats();
        // Every plan call consulted the shared cache: at least one lookup
        // ran the relaxations, and each lookup landed in exactly one bucket
        // (an identical resubmission over an unchanged history hits; a grown
        // history with unchanged costs on the old prefix repairs; estimator
        // drift recomputes — all three are legitimate here).
        assert!(stats.misses >= 1);
        assert!(stats.hits + stats.misses + stats.repairs >= 2);
    }

    #[test]
    fn batch_submission_plans_jointly_and_executes_in_order() {
        let shared = SharedHyppo::new(config(64 * 1024 * 1024));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        // Duplicates in the batch: items 0 and 2 are the same spec, so the
        // joint planner collapses them into one group.
        let specs = vec![
            wide_ensemble_spec("taxi", 3, 7),
            wide_ensemble_spec("taxi", 4, 8),
            wide_ensemble_spec("taxi", 3, 7),
        ];
        let batch = shared.submit_batch_shared(specs, 2).unwrap();
        assert_eq!(batch.reports.len(), 3);
        assert_eq!(batch.batch.items, 3);
        assert_eq!(batch.batch.groups, 2, "duplicate specs dedup into one group");
        assert_eq!(batch.batch.deduped, 1);
        assert_eq!(
            batch.reports[0].planned_cost.to_bits(),
            batch.reports[2].planned_cost.to_bits(),
            "deduped items carry the identical plan"
        );
        assert!(batch.reports.iter().all(|r| r.tasks_executed > 0));
        // The per-batch delta never exceeds the cumulative counters.
        let total = shared.bounds_stats();
        assert!(batch.bounds_delta.misses <= total.misses);
        assert!(batch.bounds_delta.batch_leaf_repairs <= total.batch_leaf_repairs);
    }

    #[test]
    fn shared_session_batch_submission_matches_sequential_plans() {
        // Same specs through both paths, against equally fresh backends:
        // planner bit-identity lifts to identical planned costs.
        let specs = || vec![wide_ensemble_spec("taxi", 3, 7), wide_ensemble_spec("taxi", 4, 8)];
        let mut sequential = SharedSession::new(SharedHyppo::new(config(0)), 2);
        sequential.register_dataset("taxi", taxi::generate(300, 5));
        let seq: Vec<f64> = specs()
            .into_iter()
            .map(|s| {
                let fresh = SharedSession::new(SharedHyppo::new(config(0)), 2);
                fresh.backend().register_dataset("taxi", taxi::generate(300, 5));
                fresh.backend().submit_shared(s, 2).unwrap().0.planned_cost
            })
            .collect();
        let mut batched = SharedSession::new(SharedHyppo::new(config(0)), 2);
        batched.register_dataset("taxi", taxi::generate(300, 5));
        let reports = Session::submit_batch(&mut batched, specs()).unwrap();
        assert_eq!(reports.len(), 2);
        for (r, s) in reports.iter().zip(&seq) {
            assert_eq!(r.planned_cost.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn simulated_mode_runs_on_the_virtual_clock() {
        let shared = SharedHyppo::new(HyppoConfig { mode: ExecMode::Simulated, ..config(0) });
        shared.register_dataset("taxi", taxi::generate(100, 5));
        let outcome = shared.run_sessions_concurrent(sessions(2), 4).unwrap();
        assert_eq!(outcome.metrics.sessions, 2);
        for report in &outcome.reports {
            assert!(report.runs.iter().all(|r| r.values.is_empty()));
        }
    }
}
