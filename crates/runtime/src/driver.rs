//! Concurrent exploratory sessions over one shared HYPPO state.
//!
//! [`SharedHyppo`] is the thread-safe counterpart of the core
//! [`Hyppo`](hyppo_core::Hyppo) facade. The catalog (history hypergraph + learned cost
//! estimator) lives behind an **epoch-versioned copy-on-write cell**:
//! every committed submission produces a new immutable
//! [`CatalogVersion`] with a monotonically increasing epoch, and planners
//! read through [`SharedHyppo::snapshot`] — a cheap `Arc` clone taken
//! under a briefly held lock. A planner holding the epoch-`E` snapshot
//! is **unaffected by commits with epoch > E** (DESIGN.md §14 states and
//! proves the invariant): concurrent tenants commit augmentations while
//! other tenants plan, with no reader/writer blocking across the whole
//! plan search.
//!
//! Artifacts live in a sharded [`SharedArtifactStore`], and every
//! submission runs its plan on the wavefront executor. The serving layer
//! (`hyppo-serve`) drives many tenant sessions against one `SharedHyppo`
//! through mailbox actors; this crate remains the embedded backend.
//!
//! # Commit protocol
//!
//! Planning touches no lock beyond the snapshot grab. A commit takes the
//! catalog write lock, clones the current version only if snapshots are
//! still outstanding (`Arc::make_mut`), applies the mutation
//! (record + materialize), bumps the epoch, and drains journaled durable
//! events into the attached [`DurabilityHook`] **inside the write-lock
//! critical section** — so WAL append order is the commit (epoch) order,
//! and the epoch boundary is the WAL linearization point.
//!
//! Concurrent eviction can still invalidate a plan *between* planning and
//! execution: session A plans a load of an artifact that session B evicts
//! first. The executor surfaces this as a missing-artifact error and the
//! driver simply replans from a fresh snapshot — the eviction already
//! cleared the history flag, so the new plan routes around the evicted
//! artifact.

use crate::executor::{execute_plan_parallel, WavefrontMetrics};
use crate::store::{SharedArtifactStore, DEFAULT_SHARDS};
use hyppo_core::augment::{self, annotate_costs, Augmentation};
use hyppo_core::durable::{DurabilityHook, DurableEvent};
use hyppo_core::executor::{execute_plan, ExecError, ExecMode};
use hyppo_core::materialize::{MaterializeConfig, Materializer};
use hyppo_core::monitor::record_outcome;
use hyppo_core::optimizer::batch::BatchItem;
use hyppo_core::optimizer::{Plan, PlanRequest};
use hyppo_core::system::{BatchRunReport, HyppoConfig, RunReport, SubmitError};
use hyppo_core::{ArtifactStore, CostEstimator, History, PlannerBoundsCache};
use hyppo_pipeline::{build_pipeline, ArtifactName, PipelineSpec};
use hyppo_tensor::Dataset;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How often a submission replans after losing a race with eviction.
const MAX_REPLANS: usize = 2;

/// One immutable committed version of the catalog.
///
/// Versions are produced by [`SharedHyppo`] commits and handed to readers
/// as `Arc<CatalogVersion>` snapshots. Once a version with a higher epoch
/// exists, this value never changes again — the commit path clones before
/// mutating whenever a snapshot is still held ([`Arc::make_mut`]), which
/// is exactly the copy-on-write discipline DESIGN.md §14's consistency
/// proof rests on.
#[derive(Clone, Debug)]
pub struct CatalogVersion {
    /// Commit epoch: the number of catalog mutations committed before and
    /// including this version. Strictly monotone across versions.
    pub epoch: u64,
    /// The history hypergraph `H` as of this epoch.
    pub history: History,
    /// The learned cost estimator as of this epoch.
    pub estimator: CostEstimator,
}

/// Snapshot/commit epochs of one submission through [`SharedHyppo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStamp {
    /// Epoch of the catalog snapshot the submission planned against.
    pub snapshot: u64,
    /// Epoch its commit produced.
    pub commit: u64,
}

impl EpochStamp {
    /// How many *other* commits landed between this submission's snapshot
    /// and its own commit — the snapshot-staleness gauge. Zero means the
    /// planner saw the latest state at commit time.
    pub fn lag(&self) -> u64 {
        self.commit.saturating_sub(self.snapshot).saturating_sub(1)
    }
}

/// Everything one shared submission produced.
#[derive(Clone, Debug)]
pub struct SharedRun {
    /// The submission report (same shape as the serial facade's).
    pub report: RunReport,
    /// What the wavefront executor saw.
    pub wave: WavefrontMetrics,
    /// Snapshot/commit epochs (staleness via [`EpochStamp::lag`]).
    pub epochs: EpochStamp,
}

/// Everything one shared *batch* submission produced.
#[derive(Clone, Debug)]
pub struct SharedBatchRun {
    /// The joint-planning batch report.
    pub batch: BatchRunReport,
    /// Snapshot epoch all items planned against, and the last item's
    /// commit epoch (each item commits its own epoch in order).
    pub epochs: EpochStamp,
}

/// Thread-safe HYPPO: epoch-versioned catalog, shared artifact store, and
/// wavefront plan execution.
#[derive(Debug)]
pub struct SharedHyppo {
    /// Configuration (shared read-only across sessions).
    pub config: HyppoConfig,
    catalog: RwLock<Arc<CatalogVersion>>,
    store: SharedArtifactStore,
    cumulative_seconds: Mutex<f64>,
    /// Wall-clock nanos spent waiting on the catalog lock.
    lock_wait_nanos: AtomicU64,
    /// Planner heuristic-bounds cache, shared across sessions — concurrent
    /// submissions over the same (unchanged) history reuse one bounds
    /// computation instead of recomputing per plan.
    bounds_cache: Arc<PlannerBoundsCache>,
    /// Durable-event sink. Drained while the catalog write lock is held,
    /// so the appended order is the commit (epoch) order.
    durability: Mutex<Option<Box<dyn DurabilityHook>>>,
}

impl SharedHyppo {
    /// Fresh shared system with [`DEFAULT_SHARDS`] store shards.
    pub fn new(config: HyppoConfig) -> Self {
        SharedHyppo::from_parts(
            config,
            History::new(),
            CostEstimator::new(),
            ArtifactStore::new(),
            DEFAULT_SHARDS,
        )
    }

    /// Wrap existing state (typically moved out of a serial [`Hyppo`](hyppo_core::Hyppo)).
    pub fn from_parts(
        config: HyppoConfig,
        history: History,
        estimator: CostEstimator,
        store: ArtifactStore,
        n_shards: usize,
    ) -> Self {
        SharedHyppo {
            config,
            catalog: RwLock::new(Arc::new(CatalogVersion { epoch: 0, history, estimator })),
            store: SharedArtifactStore::from_store(store, n_shards),
            cumulative_seconds: Mutex::new(0.0),
            lock_wait_nanos: AtomicU64::new(0),
            bounds_cache: Arc::new(PlannerBoundsCache::new()),
            durability: Mutex::new(None),
        }
    }

    /// The current catalog version — an immutable epoch-stamped snapshot.
    ///
    /// The lock is held only for the `Arc` clone; planning against the
    /// returned version proceeds with **no** lock held, and commits with a
    /// higher epoch never mutate it (copy-on-write).
    pub fn snapshot(&self) -> Arc<CatalogVersion> {
        let start = Instant::now();
        let snap = Arc::clone(&self.catalog.read().unwrap_or_else(|e| e.into_inner()));
        self.record_wait(start);
        snap
    }

    /// The latest committed epoch.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Commit one catalog mutation: clone-on-write the current version,
    /// apply `mutate`, bump the epoch, and drain journaled events into the
    /// attached durability hook while the write lock is still held (WAL
    /// order = epoch order). Returns the mutation's result, the new epoch,
    /// and the durability outcome.
    fn commit<R>(
        &self,
        mutate: impl FnOnce(&mut History, &mut CostEstimator) -> R,
    ) -> (R, u64, std::io::Result<()>) {
        let start = Instant::now();
        let mut guard = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start);
        let version = Arc::make_mut(&mut guard);
        let result = mutate(&mut version.history, &mut version.estimator);
        version.epoch += 1;
        let epoch = version.epoch;
        // hyppo-lint: allow(blocking-in-critical-section) draining the WAL
        // inside the commit critical section is what makes WAL order equal
        // epoch order (DESIGN.md §14); moving it outside would reorder
        let durable = self.drain_events(&mut version.history);
        (result, epoch, durable)
    }

    /// Attach a durability hook and start journaling history mutations and
    /// estimator observations. Every commit drains its events into the
    /// hook inside the catalog write-lock critical section, so replaying
    /// the log serially rebuilds the state this concurrent system reached.
    pub fn attach_durability(&self, hook: Box<dyn DurabilityHook>) {
        *self.durability.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
        let (_, _, durable) = self.commit(|history, _| history.enable_event_journal());
        debug_assert!(durable.is_ok(), "journal enablement emits no events");
    }

    /// Detach and return the durability hook, if any. Journaled events not
    /// yet flushed stay queued in the history journal.
    pub fn detach_durability(&self) -> Option<Box<dyn DurabilityHook>> {
        self.durability.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Drain queued events (e.g. from [`SharedHyppo::register_dataset`])
    /// into the attached durability hook.
    pub fn flush_durability(&self) -> std::io::Result<()> {
        let start = Instant::now();
        let mut guard = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start);
        let version = Arc::make_mut(&mut guard);
        // hyppo-lint: allow(blocking-in-critical-section) same invariant as
        // `commit`: the drain must happen under the catalog write lock so
        // the append order is the commit order
        self.drain_events(&mut version.history)
    }

    /// Drain the history journal into the hook. Callers hold the catalog
    /// write lock (`history` proves it), which makes the append order the
    /// commit order.
    fn drain_events(&self, history: &mut History) -> std::io::Result<()> {
        let mut guard = self.durability.lock().unwrap_or_else(|e| e.into_inner());
        let Some(hook) = guard.as_mut() else {
            return Ok(());
        };
        let events = history.take_events();
        if events.is_empty() {
            return Ok(());
        }
        // hyppo-lint: allow(blocking-in-critical-section) appends must retire
        // in commit order, which the durability mutex guarantees; the hook's
        // IO (buffer or fsync) is the point of holding it
        hook.append(&events)
    }

    /// Tear down into `(history, estimator, store, cumulative_seconds)` —
    /// the inverse of [`SharedHyppo::from_parts`].
    pub fn into_parts(self) -> (History, CostEstimator, ArtifactStore, f64) {
        let version = self.catalog.into_inner().unwrap_or_else(|e| e.into_inner());
        let version = Arc::try_unwrap(version).unwrap_or_else(|arc| (*arc).clone());
        let cumulative = *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner());
        (version.history, version.estimator, self.store.into_store(), cumulative)
    }

    /// Register a raw dataset as loadable from the source.
    pub fn register_dataset(&self, id: &str, dataset: Dataset) {
        let size = dataset.size_bytes() as u64;
        self.store.register_dataset(id, dataset);
        let (_, _, durable) = self.commit(|history, _| history.record_dataset(id, size));
        // Registration events stay queued on hook failure; the next
        // successful submission re-drains them.
        let _ = durable;
    }

    /// Cumulative execution seconds across all submissions so far.
    pub fn cumulative_seconds(&self) -> f64 {
        *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bounds-cache counters across all sessions sharing this system:
    /// hits, from-scratch recomputes, and journal-repaired patch-forwards.
    pub fn bounds_stats(&self) -> hyppo_core::BoundsCacheStats {
        self.bounds_cache.stats()
    }

    /// Wall-clock seconds spent waiting on any lock (store shards plus the
    /// catalog cell).
    pub fn lock_wait_seconds(&self) -> f64 {
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge; a torn
        // sum across in-flight adds is acceptable for metrics
        self.store.lock_wait_seconds() + self.lock_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    fn record_wait(&self, start: Instant) {
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // hyppo-lint: allow(relaxed-ordering-justified) contention gauge only
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Submit one pipeline, executing its plan on `workers` wavefront
    /// threads. Safe to call from many threads at once.
    pub fn submit_shared(
        &self,
        spec: PipelineSpec,
        workers: usize,
    ) -> Result<SharedRun, SubmitError> {
        let pipeline = build_pipeline(spec);
        self.run_shared(workers, |history| {
            Some(augment::augment(&pipeline, history, &self.config.dictionary, self.config.augment))
        })
    }

    /// Retrieve previously computed artifacts by name (paper Scenario 2),
    /// planning over the shared history's alternatives only. Safe to call
    /// from many threads at once.
    pub fn retrieve_shared(
        &self,
        names: &[ArtifactName],
        workers: usize,
    ) -> Result<SharedRun, SubmitError> {
        self.run_shared(workers, |history| augment::augment_request(history, names))
    }

    /// The shared plan → execute → commit loop behind [`submit_shared`] and
    /// [`retrieve_shared`]. `build` constructs the augmentation against an
    /// epoch snapshot (returning `None` when no plan can exist).
    ///
    /// [`submit_shared`]: SharedHyppo::submit_shared
    /// [`retrieve_shared`]: SharedHyppo::retrieve_shared
    fn run_shared(
        &self,
        workers: usize,
        build: impl Fn(&History) -> Option<Augmentation>,
    ) -> Result<SharedRun, SubmitError> {
        let mut replans = 0;
        loop {
            let opt_start = Instant::now();

            // Plan against an immutable snapshot: no lock held past the
            // Arc clone, commits from other tenants proceed concurrently.
            let snap = self.snapshot();
            let aug = build(&snap.history).ok_or(SubmitError::NoPlan)?;
            let costs = annotate_costs(&aug, &snap.estimator, &self.store);
            let plan = self
                .config
                .search
                .clone()
                .bounds_cache(Arc::clone(&self.bounds_cache))
                .plan(
                    &aug.graph,
                    PlanRequest::new(&costs, aug.source, &aug.targets)
                        .with_new_tasks(&aug.new_tasks),
                )
                .ok_or(SubmitError::NoPlan)?;
            let optimize_seconds = opt_start.elapsed().as_secs_f64();

            match self.execute_and_commit(&aug, &costs, &plan, workers, optimize_seconds) {
                // Lost a race with another session's eviction: the
                // artifact this plan meant to load is gone. Its history
                // flag was cleared by the same eviction, so replanning
                // from a fresh snapshot routes around it.
                Err(SubmitError::Exec(ExecError::MissingArtifact(_))) if replans < MAX_REPLANS => {
                    replans += 1;
                    continue;
                }
                Ok((report, wave, commit)) => {
                    return Ok(SharedRun {
                        report,
                        wave,
                        epochs: EpochStamp { snapshot: snap.epoch, commit },
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Execute a planned augmentation and commit its outcome: run the plan
    /// on the wavefront executor (or the virtual clock) with no lock held,
    /// then commit one catalog epoch — record into history/estimator,
    /// journal durable events, and materialize, all inside the catalog
    /// write-lock critical section so budget accounting is never
    /// interleaved between sessions. Shared by
    /// [`run_shared`](SharedHyppo::run_shared) (which wraps it in the
    /// eviction-race replan loop) and
    /// [`submit_batch_shared`](SharedHyppo::submit_batch_shared) (which
    /// plans the whole batch up front and finishes items in order).
    fn execute_and_commit(
        &self,
        aug: &Augmentation,
        costs: &[f64],
        plan: &Plan,
        workers: usize,
        optimize_seconds: f64,
    ) -> Result<(RunReport, WavefrontMetrics, u64), SubmitError> {
        // Execute without holding any coarse lock.
        let executed = if self.config.mode == ExecMode::Real {
            execute_plan_parallel(aug, &plan.edges, &self.store, workers)
        } else {
            execute_plan(aug, &plan.edges, &self.store, ExecMode::Simulated, costs).map(|outcome| {
                let wave = WavefrontMetrics {
                    workers: 1,
                    dispatched: outcome.metrics.len(),
                    peak_concurrency: 1,
                    wall_seconds: outcome.total_seconds,
                    task_seconds: outcome.total_seconds,
                };
                crate::executor::ParallelOutcome { outcome, metrics: wave }
            })
        };
        let parallel = executed.map_err(SubmitError::Exec)?;
        let outcome = parallel.outcome;
        let target_names: Vec<ArtifactName> =
            aug.targets.iter().map(|&t| aug.graph.node(t).name).collect();

        // Record + materialize as one committed epoch.
        let (report_mat, commit_epoch, durable) = self.commit(|history, estimator| {
            record_outcome(aug, &outcome, &target_names, history, estimator);
            // Mirror estimator observations into the durable event
            // stream (see the serial facade for the rationale).
            if history.journal_enabled() {
                for m in &outcome.metrics {
                    if !m.is_load {
                        history.journal_event(DurableEvent::Observe {
                            op: m.op,
                            task: m.task,
                            impl_index: m.impl_index,
                            input_cells: m.input_cells,
                            seconds: m.cost_seconds,
                        });
                    }
                }
            }
            if self.config.budget_bytes > 0 {
                let materializer = Materializer::new(MaterializeConfig {
                    budget_bytes: self.config.budget_bytes,
                    locality: self.config.locality,
                });
                materializer.run(history, &mut self.store.clone(), estimator, &outcome.artifacts)
            } else {
                Default::default()
            }
        });
        durable.map_err(SubmitError::Durability)?;

        *self.cumulative_seconds.lock().unwrap_or_else(|e| e.into_inner()) += outcome.total_seconds;
        let values: HashMap<ArtifactName, f64> =
            target_names.iter().filter_map(|&n| outcome.value(n).map(|v| (n, v))).collect();
        let report = RunReport {
            planned_cost: plan.cost,
            execution_seconds: outcome.total_seconds,
            optimize_seconds,
            tasks_executed: outcome.metrics.len(),
            loads: outcome.metrics.iter().filter(|m| m.is_load).count(),
            new_tasks: aug.new_tasks.len(),
            expansions: plan.expansions,
            pops: plan.pops,
            stored: report_mat.stored.len(),
            evicted: report_mat.evicted.len(),
            values,
        };
        Ok((report, parallel.metrics, commit_epoch))
    }

    /// Submit K pipelines as one jointly planned batch (the concurrent
    /// counterpart of [`Hyppo::submit_batch`](hyppo_core::Hyppo::submit_batch)): augment and cost-annotate
    /// all K against one epoch snapshot, plan them together via
    /// [`Planner::plan_batch`](hyppo_core::optimizer::Planner::plan_batch)
    /// (dedup + shared-prefix bound amortization through the shared bounds
    /// cache), then execute and commit each item in order on `workers`
    /// wavefront threads.
    ///
    /// Planning is all-or-nothing ([`SubmitError::NoPlan`] before anything
    /// executes). An item that loses a race with eviction — its own batch's
    /// materialization or a concurrent session's — falls back to a full
    /// [`submit_shared`](SharedHyppo::submit_shared) replan, counted in
    /// [`BatchRunReport::replans`].
    pub fn submit_batch_shared(
        &self,
        specs: Vec<PipelineSpec>,
        workers: usize,
    ) -> Result<SharedBatchRun, SubmitError> {
        if specs.is_empty() {
            let epoch = self.current_epoch();
            return Ok(SharedBatchRun {
                batch: BatchRunReport::default(),
                epochs: EpochStamp { snapshot: epoch, commit: epoch },
            });
        }
        let stats_before = self.bounds_stats();
        let opt_start = Instant::now();
        let pipelines: Vec<_> = specs.into_iter().map(build_pipeline).collect();

        // Augment + annotate every item against ONE epoch snapshot.
        let snap = self.snapshot();
        let augs: Vec<Augmentation> = pipelines
            .iter()
            .map(|p| {
                augment::augment(p, &snap.history, &self.config.dictionary, self.config.augment)
            })
            .collect();
        let costs: Vec<Vec<f64>> =
            augs.iter().map(|a| annotate_costs(a, &snap.estimator, &self.store)).collect();
        let planner = self.config.search.clone().bounds_cache(Arc::clone(&self.bounds_cache));
        let items: Vec<BatchItem<'_, _, _>> = augs
            .iter()
            .zip(&costs)
            .map(|(a, c)| {
                BatchItem::new(
                    &a.graph,
                    PlanRequest::new(c, a.source, &a.targets).with_new_tasks(&a.new_tasks),
                )
            })
            .collect();
        let batch = planner.plan_batch(&items);
        drop(items);
        let plans: Vec<Plan> = batch
            .plans
            .iter()
            .map(|p| p.clone().ok_or(SubmitError::NoPlan))
            .collect::<Result<_, _>>()?;
        let shared_artifacts: Vec<ArtifactName> = batch
            .shared_edges
            .iter()
            .filter(|e| e.index() < augs[0].graph.edge_bound())
            .flat_map(|&e| augs[0].graph.edge_ref(e).head.iter())
            .map(|&n| augs[0].graph.node(n).name)
            .collect();
        let optimize_share = opt_start.elapsed().as_secs_f64() / augs.len() as f64;

        let mut reports = Vec::with_capacity(augs.len());
        let mut replans = 0usize;
        let mut last_commit = snap.epoch;
        for (i, (aug, plan)) in augs.iter().zip(&plans).enumerate() {
            match self.execute_and_commit(aug, &costs[i], plan, workers, optimize_share) {
                Ok((report, _, commit)) => {
                    last_commit = commit;
                    reports.push(report);
                }
                Err(SubmitError::Exec(ExecError::MissingArtifact(_))) => {
                    // Eviction (this batch's own materialization or a
                    // concurrent session's) invalidated the snapshot plan;
                    // fall back to the full replan loop.
                    replans += 1;
                    let run = self.run_shared(workers, |history| {
                        Some(augment::augment(
                            &pipelines[i],
                            history,
                            &self.config.dictionary,
                            self.config.augment,
                        ))
                    })?;
                    last_commit = run.epochs.commit;
                    reports.push(run.report);
                }
                Err(e) => return Err(e),
            }
        }
        let bounds_delta = self.bounds_stats().delta_since(&stats_before);
        Ok(SharedBatchRun {
            batch: BatchRunReport {
                reports,
                batch: batch.stats,
                bounds_delta,
                shared_artifacts,
                replans,
            },
            epochs: EpochStamp { snapshot: snap.epoch, commit: last_commit },
        })
    }
}

/// One analyst's session against a [`SharedHyppo`], behind the core
/// [`Session`](hyppo_core::Session) trait — so harnesses written against
/// `Session` (the baselines crate's `SessionMethod`, benches, examples)
/// drive the concurrent backend exactly like the serial one.
///
/// Generic over how the backend is held: own it (`SharedSession<SharedHyppo>`,
/// the default), or share it (`SharedSession<Arc<SharedHyppo>>`) so several
/// sessions hit one state — the collaborative setting. For multi-tenant
/// serving with admission control and mailbox actors, use `hyppo-serve`'s
/// `Client` instead.
#[derive(Debug)]
pub struct SharedSession<T = SharedHyppo> {
    backend: T,
    workers: usize,
}

impl<T: std::borrow::Borrow<SharedHyppo>> SharedSession<T> {
    /// Drive `backend`, executing each plan on `workers` wavefront threads.
    pub fn new(backend: T, workers: usize) -> Self {
        SharedSession { backend, workers: workers.max(1) }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &SharedHyppo {
        self.backend.borrow()
    }

    /// Unwrap the backend.
    pub fn into_inner(self) -> T {
        self.backend
    }
}

impl<T: std::borrow::Borrow<SharedHyppo>> hyppo_core::Session for SharedSession<T> {
    fn backend_name(&self) -> &'static str {
        "HYPPO-shared"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.backend().register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<RunReport, SubmitError> {
        self.backend().submit_shared(spec, self.workers).map(|run| run.report)
    }

    fn submit_batch(&mut self, specs: Vec<PipelineSpec>) -> Result<Vec<RunReport>, SubmitError> {
        self.backend().submit_batch_shared(specs, self.workers).map(|b| b.batch.reports)
    }

    fn retrieve(&mut self, names: &[ArtifactName]) -> Result<RunReport, SubmitError> {
        self.backend().retrieve_shared(names, self.workers).map(|run| run.report)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.backend().cumulative_seconds()
    }

    fn budget_bytes(&self) -> u64 {
        self.backend().config.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.backend().snapshot().history.artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_core::Session;
    use hyppo_workloads::ensemble_wl::wide_ensemble_spec;
    use hyppo_workloads::taxi;

    fn config(budget: u64) -> HyppoConfig {
        HyppoConfig { budget_bytes: budget, ..Default::default() }
    }

    #[test]
    fn snapshots_are_epoch_stamped_and_immutable_under_commits() {
        let shared = SharedHyppo::new(config(64 * 1024 * 1024));
        shared.register_dataset("taxi", taxi::generate(200, 5));
        let before = shared.snapshot();
        let artifacts_before = before.history.artifact_count();

        let run = shared.submit_shared(wide_ensemble_spec("taxi", 3, 7), 2).unwrap();
        assert!(run.report.tasks_executed > 0);
        assert!(run.epochs.commit > before.epoch, "commit must bump the epoch");
        assert_eq!(run.epochs.snapshot, before.epoch, "planned against the old snapshot");
        assert_eq!(run.epochs.lag(), 0, "no other tenant committed in between");

        // The old snapshot is frozen: the commit went into a new version.
        assert_eq!(before.history.artifact_count(), artifacts_before);
        let after = shared.snapshot();
        assert!(after.history.artifact_count() > artifacts_before);
        assert_eq!(after.epoch, run.epochs.commit);
    }

    #[test]
    fn concurrent_submissions_interleave_and_observe_lag() {
        let shared = Arc::new(SharedHyppo::new(config(64 * 1024 * 1024)));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let runs: Vec<SharedRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        shared
                            .submit_shared(
                                wide_ensemble_spec("taxi", 3 + i % 2, 7 + i as u64 % 2),
                                2,
                            )
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("submission panicked")).collect()
        });
        // Commit epochs are distinct (one commit each) and lag accounts for
        // exactly the commits that landed in between.
        let mut commits: Vec<u64> = runs.iter().map(|r| r.epochs.commit).collect();
        commits.sort_unstable();
        commits.dedup();
        assert_eq!(commits.len(), 4, "every submission commits its own epoch");
        for run in &runs {
            assert_eq!(
                run.epochs.lag(),
                runs.iter()
                    .filter(|o| o.epochs.commit > run.epochs.snapshot
                        && o.epochs.commit < run.epochs.commit)
                    .count() as u64
            );
        }

        // No lost materializations: every artifact the history believes is
        // materialized must actually be in the store.
        let shared = Arc::try_unwrap(shared).expect("all threads joined");
        let (history, _, store, cumulative) = shared.into_parts();
        for name in history.materialized() {
            assert!(store.contains(name), "history says {name} is materialized; store disagrees");
        }
        assert!(cumulative > 0.0);
    }

    #[test]
    fn budget_is_respected_under_concurrency() {
        let budget = 32 * 1024;
        let shared = Arc::new(SharedHyppo::new(config(budget)));
        shared.register_dataset("taxi", taxi::generate(200, 5));
        std::thread::scope(|scope| {
            for i in 0..4 {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    shared
                        .submit_shared(wide_ensemble_spec("taxi", 3 + i % 2, 7 + i as u64 % 2), 2)
                        .unwrap();
                });
            }
        });
        let shared = Arc::try_unwrap(shared).expect("all threads joined");
        let (_, _, store, _) = shared.into_parts();
        assert!(
            store.used_bytes() <= budget,
            "store uses {} > budget {budget}",
            store.used_bytes()
        );
    }

    #[test]
    fn shared_session_drives_the_concurrent_backend() {
        let mut session = SharedSession::new(SharedHyppo::new(config(64 * 1024 * 1024)), 2);
        session.register_dataset("taxi", taxi::generate(300, 5));
        let report = session.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        assert!(report.tasks_executed > 0);
        assert_eq!(session.backend_name(), "HYPPO-shared");
        assert!(session.cumulative_seconds() > 0.0);
        assert!(session.history_artifacts() > 0);

        // Scenario 2 against the shared backend: retrieve recorded value
        // artifacts by name.
        let names: Vec<ArtifactName> = {
            let snap = session.backend().snapshot();
            snap.history
                .artifact_names()
                .filter(|&n| {
                    let node = snap.history.node_of(n).unwrap();
                    snap.history.graph.node(node).role == hyppo_pipeline::ArtifactRole::Value
                })
                .collect()
        };
        assert!(!names.is_empty());
        let report = session.retrieve(&names).unwrap();
        assert!(report.tasks_executed >= 1);
        assert_eq!(report.values.len(), names.len());
    }

    #[test]
    fn shared_sessions_can_share_one_backend_through_an_arc() {
        let shared = Arc::new(SharedHyppo::new(config(64 * 1024 * 1024)));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let mut a = SharedSession::new(Arc::clone(&shared), 2);
        let mut b = SharedSession::new(Arc::clone(&shared), 2);
        a.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        let report = b.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        assert!(report.loads >= 1, "second session should reuse the first's artifacts");
    }

    #[test]
    fn bounds_cache_is_shared_and_counters_account_for_every_lookup() {
        let shared = Arc::new(SharedHyppo::new(config(64 * 1024 * 1024)));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        let mut a = SharedSession::new(Arc::clone(&shared), 2);
        let mut b = SharedSession::new(Arc::clone(&shared), 2);
        a.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        b.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
        let stats = shared.bounds_stats();
        // Every plan call consulted the shared cache: at least one lookup
        // ran the relaxations, and each lookup landed in exactly one bucket
        // (an identical resubmission over an unchanged history hits; a grown
        // history with unchanged costs on the old prefix repairs; estimator
        // drift recomputes — all three are legitimate here).
        assert!(stats.misses >= 1);
        assert!(stats.hits + stats.misses + stats.repairs >= 2);
    }

    #[test]
    fn batch_submission_plans_jointly_and_executes_in_order() {
        let shared = SharedHyppo::new(config(64 * 1024 * 1024));
        shared.register_dataset("taxi", taxi::generate(300, 5));
        // Duplicates in the batch: items 0 and 2 are the same spec, so the
        // joint planner collapses them into one group.
        let specs = vec![
            wide_ensemble_spec("taxi", 3, 7),
            wide_ensemble_spec("taxi", 4, 8),
            wide_ensemble_spec("taxi", 3, 7),
        ];
        let snapshot_before = shared.current_epoch();
        let run = shared.submit_batch_shared(specs, 2).unwrap();
        let batch = run.batch;
        assert_eq!(batch.reports.len(), 3);
        assert_eq!(batch.batch.items, 3);
        assert_eq!(batch.batch.groups, 2, "duplicate specs dedup into one group");
        assert_eq!(batch.batch.deduped, 1);
        assert_eq!(
            batch.reports[0].planned_cost.to_bits(),
            batch.reports[2].planned_cost.to_bits(),
            "deduped items carry the identical plan"
        );
        assert!(batch.reports.iter().all(|r| r.tasks_executed > 0));
        // Each item committed one epoch, in order, from one snapshot.
        assert_eq!(run.epochs.snapshot, snapshot_before);
        assert_eq!(run.epochs.commit, snapshot_before + 3);
        // The per-batch delta never exceeds the cumulative counters.
        let total = shared.bounds_stats();
        assert!(batch.bounds_delta.misses <= total.misses);
        assert!(batch.bounds_delta.batch_leaf_repairs <= total.batch_leaf_repairs);
    }

    #[test]
    fn shared_session_batch_submission_matches_sequential_plans() {
        // Same specs through both paths, against equally fresh backends:
        // planner bit-identity lifts to identical planned costs.
        let specs = || vec![wide_ensemble_spec("taxi", 3, 7), wide_ensemble_spec("taxi", 4, 8)];
        let mut sequential = SharedSession::new(SharedHyppo::new(config(0)), 2);
        sequential.register_dataset("taxi", taxi::generate(300, 5));
        let seq: Vec<f64> = specs()
            .into_iter()
            .map(|s| {
                let fresh = SharedSession::new(SharedHyppo::new(config(0)), 2);
                fresh.backend().register_dataset("taxi", taxi::generate(300, 5));
                fresh.backend().submit_shared(s, 2).unwrap().report.planned_cost
            })
            .collect();
        let mut batched = SharedSession::new(SharedHyppo::new(config(0)), 2);
        batched.register_dataset("taxi", taxi::generate(300, 5));
        let reports = Session::submit_batch(&mut batched, specs()).unwrap();
        assert_eq!(reports.len(), 2);
        for (r, s) in reports.iter().zip(&seq) {
            assert_eq!(r.planned_cost.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn simulated_mode_runs_on_the_virtual_clock() {
        let shared = SharedHyppo::new(HyppoConfig { mode: ExecMode::Simulated, ..config(0) });
        shared.register_dataset("taxi", taxi::generate(100, 5));
        let run = shared.submit_shared(wide_ensemble_spec("taxi", 3, 7), 4).unwrap();
        assert!(run.report.values.is_empty());
        assert!(run.report.execution_seconds > 0.0);
    }
}
