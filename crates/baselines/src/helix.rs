//! Helix (Xin et al., VLDB'18), reimplemented per the paper's description:
//! computation sharing, *optimal* load-vs-compute reuse solved as a
//! project-selection problem (min-cut / max-flow), and a materialization
//! policy restricted to the artifacts of the immediately preceding
//! pipeline (paper §V-A-c: "does not keep history beyond the previous
//! iteration").
//!
//! # The reuse min-cut
//!
//! Under physical naming every artifact has exactly one computational
//! producer plus (if materialized) one load edge, so the plan choice is
//! per-artifact *load vs compute vs prune*, with two couplings: computing
//! any output of a multi-output task pays the task cost once for all
//! outputs, and running a task requires all of its inputs to be available.
//!
//! We encode the choice as a monotone min-cut over two variable families
//! (S-side = true):
//!
//! - `y_a` — artifact `a` is *needed/available*;
//! - `x_t` — task `t` *runs*;
//!
//! with the constraints and charges
//!
//! - targets are needed: `S → y_target` (∞);
//! - running a task needs its inputs: `x_t → y_b` (∞) per input `b`;
//! - running a task costs its compute cost: `x_t → T` (cap `c_t`);
//! - a needed artifact whose producer does not run must be loaded:
//!   `y_a → x_{t(a)}` (cap = load cost, ∞ when not materialized);
//! - a needed artifact with no producer (raw dataset) loads directly:
//!   `y_a → T` (cap = load cost).
//!
//! The minimum cut simultaneously decides what to load, what to compute,
//! and what to prune (y = 0 costs nothing) — the project-selection
//! solution the Helix paper describes. The result is cross-checked against
//! HYPPO's provably optimal search in the tests.

use crate::maxflow::Dinic;
use crate::method::{ArtifactRequest, BaselineState, Method, MethodReport};
use hyppo_core::augment::Augmentation;
use hyppo_core::materialize::{MaterializeConfig, Materializer, PlanLocality};
use hyppo_core::system::SubmitError;
use hyppo_hypergraph::{EdgeId, NodeId};
use hyppo_pipeline::{ArtifactName, NamingMode, PipelineSpec};
use hyppo_tensor::Dataset;
use std::collections::HashMap;
use std::time::Instant;

/// The Helix baseline.
#[derive(Debug)]
pub struct Helix {
    state: BaselineState,
}

impl Helix {
    /// A Helix system with the given storage budget.
    pub fn new(budget_bytes: u64) -> Self {
        Helix { state: BaselineState::new(budget_bytes) }
    }
}

/// Solve the load-vs-compute problem on an augmentation (physical naming:
/// one compute producer per artifact) via iterated min-cut. Returns the
/// chosen plan edges. Exposed for the scalability tests.
pub fn helix_plan(aug: &Augmentation, costs: &[f64], targets: &[NodeId]) -> Option<Vec<EdgeId>> {
    let compute_edge = |v: NodeId| -> Option<EdgeId> {
        aug.graph.bstar(v).iter().copied().find(|&e| !aug.graph.edge(e).is_load())
    };
    let load_edge = |v: NodeId| -> Option<EdgeId> {
        aug.graph.bstar(v).iter().copied().find(|&e| aug.graph.edge(e).is_load())
    };

    // Artifacts that could participate: the backward closure of the targets.
    let artifacts: Vec<NodeId> = {
        let rel = hyppo_hypergraph::connectivity::backward_relevant(&aug.graph, targets);
        let mut a: Vec<NodeId> = rel.iter().filter(|&v| v != aug.source).collect();
        a.sort_unstable();
        a
    };
    let art_idx: HashMap<NodeId, usize> =
        artifacts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let tasks: Vec<EdgeId> = {
        let mut t: Vec<EdgeId> = artifacts.iter().filter_map(|&v| compute_edge(v)).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let task_idx: HashMap<EdgeId, usize> = tasks.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    // Network: 0 = S, 1 = T, then y-nodes (artifacts), then x-nodes (tasks).
    let mut net = Dinic::new(2 + artifacts.len() + tasks.len());
    let y_node = |i: usize| 2 + i;
    let x_node = |i: usize| 2 + artifacts.len() + i;

    for &t in targets {
        net.add_edge(0, y_node(*art_idx.get(&t)?), f64::INFINITY);
    }
    for (i, &v) in artifacts.iter().enumerate() {
        let load = load_edge(v).map(|e| costs[e.index()]).unwrap_or(f64::INFINITY);
        match compute_edge(v) {
            Some(ce) => net.add_edge(y_node(i), x_node(task_idx[&ce]), load),
            None => {
                if load.is_infinite() {
                    // Neither loadable nor computable: the whole problem is
                    // infeasible only if this artifact is actually forced;
                    // an infinite y→T edge encodes that.
                    net.add_edge(y_node(i), 1, f64::INFINITY);
                } else {
                    net.add_edge(y_node(i), 1, load);
                }
            }
        }
    }
    for (i, &e) in tasks.iter().enumerate() {
        net.add_edge(x_node(i), 1, costs[e.index()]);
        for &b in aug.graph.tail(e) {
            if b != aug.source {
                net.add_edge(x_node(i), y_node(art_idx[&b]), f64::INFINITY);
            }
        }
    }

    let flow = net.max_flow(0, 1);
    if flow.is_infinite() {
        return None; // some target is underivable
    }
    let side = net.min_cut_source_side(0);

    // Assemble: a task runs iff its x-node is on the S-side; a needed
    // artifact whose producer does not run loads.
    let mut edges: Vec<EdgeId> = Vec::new();
    for (i, &e) in tasks.iter().enumerate() {
        if side[x_node(i)] && !edges.contains(&e) {
            edges.push(e);
        }
    }
    for (i, &v) in artifacts.iter().enumerate() {
        if !side[y_node(i)] {
            continue; // pruned
        }
        let runs = compute_edge(v).map(|ce| side[x_node(task_idx[&ce])]).unwrap_or(false);
        if !runs {
            let le = load_edge(v)?;
            if !edges.contains(&le) {
                edges.push(le);
            }
        }
    }
    Some(hyppo_hypergraph::minimize_plan(&aug.graph, &edges, &[aug.source], targets))
}

impl Method for Helix {
    fn name(&self) -> &'static str {
        "Helix"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.state.register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError> {
        let start = Instant::now();
        let aug = self.state.build_augmentation(spec, true);
        let costs = self.state.costs(&aug);
        let targets = aug.targets.clone();
        let plan = helix_plan(&aug, &costs, &targets).ok_or(SubmitError::NoPlan)?;
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let optimize_seconds = start.elapsed().as_secs_f64();
        let (mut report, fresh) = self.state.run(&aug, &plan, planned, optimize_seconds)?;

        // Helix materialization: only artifacts of the *current* run are
        // candidates; everything older is evicted first.
        if self.state.budget_bytes > 0 {
            for name in self.state.history.materialized().collect::<Vec<_>>() {
                if !fresh.contains_key(&name) {
                    self.state.history.evict(name);
                    self.state.store.remove(name);
                    report.evicted += 1;
                }
            }
            let materializer = Materializer::new(MaterializeConfig {
                budget_bytes: self.state.budget_bytes,
                locality: PlanLocality::None, // Helix ranks by benefit only
            });
            let m = materializer.run(
                &mut self.state.history,
                &mut self.state.store,
                &self.state.estimator,
                &fresh,
            );
            report.stored = m.stored.len();
            report.evicted += m.evicted.len();
        }
        Ok(report)
    }

    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError> {
        let start = Instant::now();
        let names: Vec<ArtifactName> =
            requests.iter().map(|r| r.name(NamingMode::Physical)).collect();
        let aug = self.state.build_request_augmentation(&names).ok_or(SubmitError::NoPlan)?;
        let costs = self.state.costs(&aug);
        let targets = aug.targets.clone();
        let plan = helix_plan(&aug, &costs, &targets).ok_or(SubmitError::NoPlan)?;
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let optimize_seconds = start.elapsed().as_secs_f64();
        let (report, _) = self.state.run(&aug, &plan, planned, optimize_seconds)?;
        Ok(report)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.state.cumulative_seconds
    }

    fn budget_bytes(&self) -> u64 {
        self.state.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.state.history.artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_core::optimizer::{PlanRequest, Planner};
    use hyppo_hypergraph::{validate_plan, PlanValidity};
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_tensor::{Matrix, SeededRng, TaskKind};

    fn dataset(n: usize) -> Dataset {
        let mut rng = SeededRng::new(11);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::new();
        for r in 0..n {
            for c in 0..3 {
                x.set(r, c, rng.uniform(-1.0, 1.0));
            }
            y.push(x.get(r, 0));
        }
        Dataset::new(x, y, (0..3).map(|i| format!("f{i}")).collect(), TaskKind::Regression)
    }

    fn spec(seed: i64) -> PipelineSpec {
        let mut s = PipelineSpec::new();
        let d = s.load("data");
        let (train, test) = s.split(d, Config::new().with_i("seed", seed));
        let cfg = Config::new().with_i("n_trees", 25).with_i("max_depth", 7).with_i("seed", 3);
        let model = s.fit(LogicalOp::RandomForest, 0, cfg.clone(), &[train]);
        let preds = s.predict(LogicalOp::RandomForest, 0, cfg, model, test);
        s.evaluate(LogicalOp::Mse, preds, test);
        s
    }

    #[test]
    fn helix_plan_matches_exact_search() {
        // Cross-validation: on the same augmentation, the min-cut planner
        // must find the same cost as HYPPO's provably-optimal search.
        let mut h = Helix::new(64 * 1024 * 1024);
        h.register_dataset("data", dataset(1500));
        h.submit(spec(0)).unwrap();
        // Second submission: loads are now available.
        let aug = h.state.build_augmentation(spec(0), true);
        let costs = h.state.costs(&aug);
        let targets = aug.targets.clone();
        let cut_plan = helix_plan(&aug, &costs, &targets).unwrap();
        let cut_cost: f64 = cut_plan.iter().map(|&e| costs[e.index()]).sum();
        let exact = Planner::exact()
            .plan(&aug.graph, PlanRequest::new(&costs, aug.source, &targets))
            .unwrap();
        assert!((cut_cost - exact.cost).abs() < 1e-9, "min-cut {cut_cost} vs exact {}", exact.cost);
        assert_eq!(
            validate_plan(&aug.graph, &cut_plan, &[aug.source], &targets),
            PlanValidity::Valid
        );
    }

    #[test]
    fn reuses_previous_iteration_materializations() {
        let mut h = Helix::new(64 * 1024 * 1024);
        h.register_dataset("data", dataset(1500));
        let first = h.submit(spec(0)).unwrap();
        assert!(first.stored > 0);
        let second = h.submit(spec(0)).unwrap();
        assert!(second.loads >= 1, "second run loads materialized artifacts");
        assert!(second.execution_seconds < first.execution_seconds);
    }

    #[test]
    fn history_beyond_previous_iteration_is_forgotten() {
        let mut h = Helix::new(64 * 1024 * 1024);
        h.register_dataset("data", dataset(800));
        h.submit(spec(0)).unwrap();
        let stored_after_first: Vec<_> = h.state.history.materialized().collect();
        assert!(!stored_after_first.is_empty());
        // A different pipeline: its artifacts displace ALL of run 1's.
        h.submit(spec(1)).unwrap();
        for name in stored_after_first {
            assert!(
                !h.state.history.is_materialized(name),
                "Helix must evict artifacts older than the previous pipeline"
            );
        }
    }

    #[test]
    fn zero_budget_never_loads_derived_artifacts() {
        let mut h = Helix::new(0);
        h.register_dataset("data", dataset(500));
        let r1 = h.submit(spec(0)).unwrap();
        let r2 = h.submit(spec(0)).unwrap();
        assert_eq!(r1.loads, 1, "dataset load only");
        assert_eq!(r2.loads, 1);
        assert_eq!(r2.stored, 0);
    }
}
