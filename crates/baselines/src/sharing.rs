//! Sharing: common-subexpression elimination only (the paper's second
//! baseline).
//!
//! For sequential pipeline execution it behaves like NoOptimization (the
//! paper omits it from Scenario 1 for this reason); for retrieval requests
//! it recomputes derivations but *shares* the tasks common to several
//! requested artifacts. It never loads materialized artifacts and never
//! exploits equivalences (physical naming).

use crate::method::{unique_derivation_plan, ArtifactRequest, BaselineState, Method, MethodReport};
use hyppo_core::system::SubmitError;
use hyppo_hypergraph::{EdgeId, NodeId};
use hyppo_pipeline::{ArtifactName, NamingMode, PipelineSpec};
use hyppo_tensor::Dataset;

/// The Sharing baseline.
#[derive(Debug)]
pub struct Sharing {
    state: BaselineState,
}

impl Sharing {
    /// A fresh instance.
    pub fn new() -> Self {
        Sharing { state: BaselineState::new(0) }
    }
}

impl Default for Sharing {
    fn default() -> Self {
        Self::new()
    }
}

impl Method for Sharing {
    fn name(&self) -> &'static str {
        "Sharing"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.state.register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError> {
        // Sequential execution: identical to NoOptimization, but the
        // history is recorded so retrieval requests can be planned.
        let aug = self.state.build_augmentation(spec, false);
        let plan: Vec<EdgeId> = aug.graph.edge_ids().collect();
        let costs = self.state.costs(&aug);
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let (report, _) = self.state.run(&aug, &plan, planned, 0.0)?;
        Ok(report)
    }

    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError> {
        let names: Vec<ArtifactName> =
            requests.iter().map(|r| r.name(NamingMode::Physical)).collect();
        let mut aug = self.state.build_request_augmentation(&names).ok_or(SubmitError::NoPlan)?;
        let targets: Vec<NodeId> = aug.targets.clone();
        // One shared plan: the union of the unique derivations, with common
        // subexpressions automatically deduplicated. Loads are ignored
        // (Sharing has no materialization) except raw dataset loads.
        let plan = unique_derivation_plan(&aug.graph, aug.source, &targets, |v| {
            // Only raw datasets come "from storage".
            aug.graph.node(v).role == hyppo_pipeline::ArtifactRole::Raw
        })
        .ok_or(SubmitError::NoPlan)?;
        let costs = self.state.costs(&aug);
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        aug.targets = targets;
        let (report, _) = self.state.run(&aug, &plan, planned, 0.0)?;
        Ok(report)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.state.cumulative_seconds
    }

    fn budget_bytes(&self) -> u64 {
        0
    }

    fn history_artifacts(&self) -> usize {
        self.state.history.artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_pipeline::{ArtifactHandle, StepId};
    use hyppo_tensor::{Matrix, TaskKind};

    fn dataset() -> Dataset {
        Dataset::new(
            Matrix::filled(60, 3, 1.0),
            vec![0.0; 60],
            (0..3).map(|i| format!("f{i}")).collect(),
            TaskKind::Regression,
        )
    }

    fn spec() -> PipelineSpec {
        let mut s = PipelineSpec::new();
        let d = s.load("data");
        let (train, test) = s.split(d, Config::new().with_i("seed", 0));
        let scaler = s.fit(LogicalOp::MinMaxScaler, 0, Config::new(), &[train]);
        s.transform(LogicalOp::MinMaxScaler, 0, Config::new(), scaler, test);
        s
    }

    #[test]
    fn shared_retrieval_deduplicates_common_subexpressions() {
        let mut m = Sharing::new();
        m.register_dataset("data", dataset());
        m.submit(spec()).unwrap();
        // Request both the scaler state (step 2) and the scaled test set
        // (step 3): their derivations share load+split+fit.
        let reqs = vec![
            ArtifactRequest { spec: spec(), handle: ArtifactHandle { step: StepId(2), output: 0 } },
            ArtifactRequest { spec: spec(), handle: ArtifactHandle { step: StepId(3), output: 0 } },
        ];
        let r = m.retrieve(&reqs).unwrap();
        // Shared plan: load, split, fit, transform = 4 tasks (vs 7 without
        // sharing: 3 + 4).
        assert_eq!(r.tasks_executed, 4);
    }

    #[test]
    fn unknown_request_is_no_plan() {
        let mut m = Sharing::new();
        m.register_dataset("data", dataset());
        // Nothing submitted yet: history has no derivations.
        let req =
            ArtifactRequest { spec: spec(), handle: ArtifactHandle { step: StepId(2), output: 0 } };
        assert!(matches!(m.retrieve(&[req]), Err(SubmitError::NoPlan)));
    }

    #[test]
    fn submit_matches_no_optimization_task_count() {
        let mut m = Sharing::new();
        m.register_dataset("data", dataset());
        let r = m.submit(spec()).unwrap();
        assert_eq!(r.tasks_executed, 4, "load+split+fit+transform, verbatim");
        assert_eq!(m.budget_bytes(), 0);
    }
}
