//! The common interface experiment harnesses drive, plus the shared
//! plumbing all baselines reuse (physically-named history, executor,
//! monitor).

use hyppo_core::augment::{annotate_costs, Augmentation};
use hyppo_core::executor::{execute_plan, ExecMode};
use hyppo_core::history::History;
use hyppo_core::monitor::record_outcome;
use hyppo_core::system::{Hyppo, RunReport, SubmitError};
use hyppo_core::{ArtifactStore, CostEstimator, PriceModel, Session};
use hyppo_hypergraph::{EdgeId, HyperGraph, NodeId};
use hyppo_ml::Artifact;
use hyppo_pipeline::{
    build_pipeline_mode, ArtifactHandle, ArtifactName, EdgeLabel, NamingMode, NodeLabel,
    PipelineSpec,
};
use hyppo_tensor::Dataset;
use std::collections::HashMap;

/// Alias: method runs report with the same fields as HYPPO's own report.
pub type MethodReport = RunReport;

/// A reference to an artifact of a known pipeline: `(spec, step output)`.
/// Methods resolve it to a name under their own naming mode.
#[derive(Clone, Debug)]
pub struct ArtifactRequest {
    /// The pipeline that produced the artifact.
    pub spec: PipelineSpec,
    /// Which step output is requested.
    pub handle: ArtifactHandle,
}

impl ArtifactRequest {
    /// The artifact's name under the given naming mode.
    pub fn name(&self, mode: NamingMode) -> ArtifactName {
        self.spec.output_names_mode(mode)[self.handle.step.0][self.handle.output]
    }
}

/// A pipeline-execution method under evaluation (HYPPO or a baseline).
pub trait Method {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
    /// Register a raw dataset.
    fn register_dataset(&mut self, id: &str, dataset: Dataset);
    /// Execute one pipeline (Scenario 1).
    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError>;
    /// Retrieve previously computed artifacts (Scenario 2).
    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError>;
    /// Cumulative execution time so far (the paper's `cet`).
    fn cumulative_seconds(&self) -> f64;
    /// Configured storage budget in bytes.
    fn budget_bytes(&self) -> u64;
    /// Monetary cost so far (`cet × rate + B × rate`).
    fn price(&self) -> f64 {
        PriceModel::default().price(self.cumulative_seconds(), self.budget_bytes())
    }
    /// Number of artifacts recorded in the method's history (0 when the
    /// method keeps none). Used by the overhead study (Fig. 9b).
    fn history_artifacts(&self) -> usize {
        0
    }
}

/// Shared state of the reuse baselines: a *physically named* history plus
/// the store/estimator/clock every method needs.
#[derive(Debug)]
pub struct BaselineState {
    /// History under physical naming.
    pub history: History,
    /// Cost estimator (same learning rules as HYPPO's).
    pub estimator: CostEstimator,
    /// Artifact store.
    pub store: ArtifactStore,
    /// Cumulative execution seconds.
    pub cumulative_seconds: f64,
    /// Storage budget in bytes.
    pub budget_bytes: u64,
}

impl BaselineState {
    /// Fresh state with the given budget.
    pub fn new(budget_bytes: u64) -> Self {
        BaselineState {
            history: History::new(),
            estimator: CostEstimator::new(),
            store: ArtifactStore::new(),
            cumulative_seconds: 0.0,
            budget_bytes,
        }
    }

    /// Register a dataset with both store and history.
    pub fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        let size = dataset.size_bytes() as u64;
        self.store.register_dataset(id, dataset);
        self.history.record_dataset(id, size);
    }

    /// Build this baseline's view of a submitted pipeline: physical naming,
    /// no dictionary alternatives, history enrichment as requested.
    pub fn build_augmentation(&self, spec: PipelineSpec, use_history: bool) -> Augmentation {
        let pipeline = build_pipeline_mode(spec, NamingMode::Physical);
        let opts =
            hyppo_core::augment::AugmentOptions { dictionary_alternatives: false, use_history };
        hyppo_core::augment::augment(
            &pipeline,
            &self.history,
            &hyppo_pipeline::Dictionary::single_impl(),
            opts,
        )
    }

    /// Build a retrieval augmentation from the history for named requests.
    pub fn build_request_augmentation(&self, names: &[ArtifactName]) -> Option<Augmentation> {
        hyppo_core::augment::augment_request(&self.history, names)
    }

    /// Estimated costs for an augmentation's edges.
    pub fn costs(&self, aug: &Augmentation) -> Vec<f64> {
        annotate_costs(aug, &self.estimator, &self.store)
    }

    /// Execute a plan, record it into history/estimator, advance the clock.
    /// Returns the report skeleton plus the freshly produced artifacts
    /// (input to the method's materializer).
    pub fn run(
        &mut self,
        aug: &Augmentation,
        plan_edges: &[EdgeId],
        planned_cost: f64,
        optimize_seconds: f64,
    ) -> Result<(MethodReport, HashMap<ArtifactName, Artifact>), SubmitError> {
        let costs = self.costs(aug);
        let outcome = execute_plan(aug, plan_edges, &self.store, ExecMode::Real, &costs)
            .map_err(SubmitError::Exec)?;
        let target_names: Vec<ArtifactName> =
            aug.targets.iter().map(|&t| aug.graph.node(t).name).collect();
        record_outcome(aug, &outcome, &target_names, &mut self.history, &mut self.estimator);
        self.cumulative_seconds += outcome.total_seconds;
        let values =
            target_names.iter().filter_map(|&n| outcome.value(n).map(|v| (n, v))).collect();
        let report = MethodReport {
            planned_cost,
            execution_seconds: outcome.total_seconds,
            optimize_seconds,
            tasks_executed: outcome.metrics.len(),
            loads: outcome.metrics.iter().filter(|m| m.is_load).count(),
            new_tasks: aug.new_tasks.len(),
            expansions: 0,
            pops: 0,
            stored: 0,
            evicted: 0,
            values,
        };
        Ok((report, outcome.artifacts))
    }
}

/// Backward closure of the targets following each artifact's *unique*
/// computational producer (physical naming guarantees uniqueness),
/// optionally stopping at artifacts in `stop_at_load`. Returns the edge
/// set — the "just recompute everything, shared" plan.
pub fn unique_derivation_plan(
    graph: &HyperGraph<NodeLabel, EdgeLabel>,
    source: NodeId,
    targets: &[NodeId],
    load_instead: impl Fn(NodeId) -> bool,
) -> Option<Vec<EdgeId>> {
    let mut edges = Vec::new();
    let mut visited = vec![false; graph.node_bound()];
    let mut stack: Vec<NodeId> = targets.to_vec();
    while let Some(v) = stack.pop() {
        if v == source || visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        let bstar = graph.bstar(v);
        let load = bstar.iter().copied().find(|&e| graph.edge(e).is_load());
        let compute = bstar.iter().copied().find(|&e| !graph.edge(e).is_load());
        let chosen = if load_instead(v) { load.or(compute) } else { compute.or(load) }?;
        if !edges.contains(&chosen) {
            edges.push(chosen);
            for &u in graph.tail(chosen) {
                stack.push(u);
            }
        }
    }
    Some(edges)
}

/// Any [`Session`] backend behind the [`Method`] interface — logical naming,
/// requests resolved to names before handing off to the session.
///
/// [`HyppoMethod`] is the serial instantiation; the `hyppo-runtime` crate's
/// `SharedSession` slots in the same way, so experiment harnesses compare
/// serial and concurrent backends without special-casing either.
#[derive(Debug)]
pub struct SessionMethod<S>(pub S);

impl<S: Session> Method for SessionMethod<S> {
    fn name(&self) -> &'static str {
        self.0.backend_name()
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.0.register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError> {
        self.0.submit(spec)
    }

    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError> {
        let names: Vec<ArtifactName> =
            requests.iter().map(|r| r.name(NamingMode::Logical)).collect();
        self.0.retrieve(&names)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.0.cumulative_seconds()
    }

    fn budget_bytes(&self) -> u64 {
        self.0.budget_bytes()
    }

    fn history_artifacts(&self) -> usize {
        self.0.history_artifacts()
    }
}

/// HYPPO itself behind the [`Method`] interface.
pub type HyppoMethod = SessionMethod<Hyppo>;

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_tensor::{Matrix, TaskKind};

    fn dataset() -> Dataset {
        Dataset::new(
            Matrix::filled(50, 2, 1.0),
            vec![0.0; 50],
            vec!["a".into(), "b".into()],
            TaskKind::Regression,
        )
    }

    fn spec() -> PipelineSpec {
        let mut s = PipelineSpec::new();
        let d = s.load("data");
        let (train, _test) = s.split(d, Config::new().with_i("seed", 0));
        s.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        s
    }

    #[test]
    fn artifact_request_resolves_per_mode() {
        let s = spec();
        let req = ArtifactRequest {
            spec: s,
            handle: ArtifactHandle { step: hyppo_pipeline::StepId(2), output: 0 },
        };
        let logical = req.name(NamingMode::Logical);
        let physical = req.name(NamingMode::Physical);
        assert_ne!(logical, physical);
    }

    #[test]
    fn baseline_state_runs_a_plan() {
        let mut st = BaselineState::new(0);
        st.register_dataset("data", dataset());
        let aug = st.build_augmentation(spec(), false);
        let plan: Vec<EdgeId> = aug.graph.edge_ids().collect();
        let (report, fresh) = st.run(&aug, &plan, 1.0, 0.0).unwrap();
        assert_eq!(report.tasks_executed, 3);
        assert!(!fresh.is_empty());
        assert!(st.cumulative_seconds > 0.0);
        assert!(st.history.artifact_count() >= 3);
    }

    #[test]
    fn unique_derivation_plan_walks_back_to_source() {
        let mut st = BaselineState::new(0);
        st.register_dataset("data", dataset());
        let aug = st.build_augmentation(spec(), false);
        let plan = unique_derivation_plan(&aug.graph, aug.source, &aug.targets, |_| false).unwrap();
        assert_eq!(plan.len(), 3, "load + split + fit");
    }

    #[test]
    fn hyppo_method_roundtrip() {
        let mut m = SessionMethod(Hyppo::new(Default::default()));
        m.register_dataset("data", dataset());
        assert_eq!(m.name(), "HYPPO");
        let report = m.submit(spec()).unwrap();
        assert!(report.execution_seconds > 0.0);
        assert!(m.cumulative_seconds() > 0.0);
        assert_eq!(m.budget_bytes(), 0);
        assert!(m.price() > 0.0);
    }
}
