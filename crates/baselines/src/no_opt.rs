//! NoOptimization: the paper's straw man — execute every pipeline exactly
//! as submitted; no reuse, no materialization, no equivalences.

use crate::method::{ArtifactRequest, BaselineState, Method, MethodReport};
use hyppo_core::system::SubmitError;
use hyppo_hypergraph::EdgeId;
use hyppo_pipeline::{NamingMode, PipelineSpec};
use hyppo_tensor::Dataset;

/// The NoOptimization baseline.
#[derive(Debug)]
pub struct NoOptimization {
    state: BaselineState,
}

impl NoOptimization {
    /// A fresh instance (budget is irrelevant: nothing is materialized).
    pub fn new() -> Self {
        NoOptimization { state: BaselineState::new(0) }
    }
}

impl Default for NoOptimization {
    fn default() -> Self {
        Self::new()
    }
}

impl Method for NoOptimization {
    fn name(&self) -> &'static str {
        "NoOptimization"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.state.register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError> {
        // The plan is the pipeline itself, verbatim.
        let aug = self.state.build_augmentation(spec, false);
        let plan: Vec<EdgeId> = aug.graph.edge_ids().collect();
        let costs = self.state.costs(&aug);
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let (report, _) = self.state.run(&aug, &plan, planned, 0.0)?;
        Ok(report)
    }

    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError> {
        // Recompute each request's derivation independently — no sharing
        // across requests (the whole point of this baseline).
        let mut total = MethodReport::default();
        for req in requests {
            let aug = self.state.build_augmentation(req.spec.clone(), false);
            let name = req.name(NamingMode::Physical);
            let target = *aug.node_by_name.get(&name).ok_or(SubmitError::NoPlan)?;
            let plan =
                crate::method::unique_derivation_plan(&aug.graph, aug.source, &[target], |_| false)
                    .ok_or(SubmitError::NoPlan)?;
            let costs = self.state.costs(&aug);
            let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
            // Retarget the augmentation at the single requested artifact so
            // the plan validates/executes for exactly that artifact.
            let mut aug = aug;
            aug.targets = vec![target];
            let (r, _) = self.state.run(&aug, &plan, planned, 0.0)?;
            total.execution_seconds += r.execution_seconds;
            total.tasks_executed += r.tasks_executed;
            total.loads += r.loads;
            total.planned_cost += r.planned_cost;
        }
        Ok(total)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.state.cumulative_seconds
    }

    fn budget_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_pipeline::{ArtifactHandle, StepId};
    use hyppo_tensor::{Matrix, TaskKind};

    fn dataset() -> Dataset {
        Dataset::new(
            Matrix::filled(60, 2, 1.0),
            vec![0.0; 60],
            vec!["a".into(), "b".into()],
            TaskKind::Regression,
        )
    }

    fn spec() -> PipelineSpec {
        let mut s = PipelineSpec::new();
        let d = s.load("data");
        let (train, _test) = s.split(d, Config::new().with_i("seed", 0));
        s.fit(LogicalOp::MinMaxScaler, 0, Config::new(), &[train]);
        s
    }

    #[test]
    fn executes_pipeline_verbatim() {
        let mut m = NoOptimization::new();
        m.register_dataset("data", dataset());
        let r = m.submit(spec()).unwrap();
        assert_eq!(r.tasks_executed, 3);
        assert_eq!(r.loads, 1, "only the raw dataset load");
    }

    #[test]
    fn resubmission_costs_the_same_tasks() {
        let mut m = NoOptimization::new();
        m.register_dataset("data", dataset());
        let r1 = m.submit(spec()).unwrap();
        let r2 = m.submit(spec()).unwrap();
        assert_eq!(r1.tasks_executed, r2.tasks_executed, "no reuse whatsoever");
        assert!(m.cumulative_seconds() >= r1.execution_seconds + r2.execution_seconds);
    }

    #[test]
    fn retrieval_recomputes_per_request() {
        let mut m = NoOptimization::new();
        m.register_dataset("data", dataset());
        m.submit(spec()).unwrap();
        let req =
            ArtifactRequest { spec: spec(), handle: ArtifactHandle { step: StepId(2), output: 0 } };
        let r = m.retrieve(&[req.clone(), req]).unwrap();
        // Two identical requests each pay the full 3-task derivation.
        assert_eq!(r.tasks_executed, 6);
    }
}
