//! Collab (Derakhshan et al., SIGMOD'20), reimplemented per the paper's
//! description: computation sharing over an *experiment graph* spanning
//! all prior pipelines, a **linear-time reuse heuristic** that trades
//! optimality for speed ("good enough plans"), and utility-based
//! materialization.
//!
//! # The linear reuse heuristic
//!
//! For every artifact, compute (in one topological pass, memoized) the
//! *standalone recreation cost*
//!
//! ```text
//! rc(v) = min( load(v) if materialized,
//!              cost(producer(v)) + Σ_{u ∈ inputs} rc(u) )
//! ```
//!
//! and take the `argmin` choice at each artifact. Because `rc` sums input
//! costs independently, artifacts shared by several inputs are counted
//! multiple times — the deliberate approximation that makes the algorithm
//! linear but occasionally suboptimal (the paper's §V-A-c: "at the expense
//! of not always yielding the best solution").
//!
//! # Materialization
//!
//! Collab ranks candidates from the whole experiment graph by the utility
//! `freq(v) × recreation_cost(v) / size(v)` and keeps the best fit under
//! the budget.

use crate::method::{ArtifactRequest, BaselineState, Method, MethodReport};
use hyppo_core::augment::Augmentation;
use hyppo_core::system::SubmitError;
use hyppo_hypergraph::{EdgeId, NodeId};
use hyppo_ml::Artifact;
use hyppo_pipeline::{ArtifactName, ArtifactRole, NamingMode, PipelineSpec};
use hyppo_tensor::Dataset;
use std::collections::HashMap;
use std::time::Instant;

/// The Collab baseline.
#[derive(Debug)]
pub struct Collab {
    state: BaselineState,
}

impl Collab {
    /// A Collab system with the given storage budget.
    pub fn new(budget_bytes: u64) -> Self {
        Collab { state: BaselineState::new(budget_bytes) }
    }
}

/// The linear reuse pass. Returns the plan edges chosen by the heuristic.
///
/// Requires physical naming (each artifact has at most one computational
/// producer plus an optional load edge).
pub fn collab_plan(aug: &Augmentation, costs: &[f64], targets: &[NodeId]) -> Option<Vec<EdgeId>> {
    // Memoized standalone recreation cost + choice per node.
    fn rc(
        aug: &Augmentation,
        costs: &[f64],
        v: NodeId,
        memo: &mut HashMap<NodeId, (f64, Option<EdgeId>)>,
    ) -> (f64, Option<EdgeId>) {
        if v == aug.source {
            return (0.0, None);
        }
        if let Some(&cached) = memo.get(&v) {
            return cached;
        }
        // Defensive cycle cut (augmentations are DAGs by construction).
        memo.insert(v, (f64::INFINITY, None));
        let mut best = (f64::INFINITY, None);
        for &e in aug.graph.bstar(v) {
            let label = aug.graph.edge(e);
            let total = if label.is_load() {
                costs[e.index()]
            } else {
                let mut t = costs[e.index()];
                for &u in aug.graph.tail(e) {
                    t += rc(aug, costs, u, memo).0;
                    if t.is_infinite() {
                        break;
                    }
                }
                t
            };
            if total < best.0 {
                best = (total, Some(e));
            }
        }
        memo.insert(v, best);
        best
    }

    let mut memo = HashMap::new();
    for &t in targets {
        if rc(aug, costs, t, &mut memo).0.is_infinite() {
            return None;
        }
    }
    // Assemble the plan by walking the argmin choices (shared artifacts
    // executed once at runtime even though the estimate double-counted).
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut stack: Vec<NodeId> = targets.to_vec();
    let mut seen: Vec<bool> = vec![false; aug.graph.node_bound()];
    while let Some(v) = stack.pop() {
        if v == aug.source || seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        let (_, choice) = rc(aug, costs, v, &mut memo);
        let e = choice?;
        if !edges.contains(&e) {
            edges.push(e);
            for &u in aug.graph.tail(e) {
                stack.push(u);
            }
        }
    }
    Some(hyppo_hypergraph::minimize_plan(&aug.graph, &edges, &[aug.source], targets))
}

/// Collab's materialization round: utility-ranked greedy under the budget.
fn collab_materialize(
    state: &mut BaselineState,
    fresh: &HashMap<ArtifactName, Artifact>,
) -> (usize, usize) {
    // Candidates: currently materialized ∪ fresh, minus raw sources.
    let mut candidates: Vec<(ArtifactName, u64, bool)> = Vec::new();
    for name in state.history.materialized().collect::<Vec<_>>() {
        if let Some(size) = state.store.size_of(name) {
            candidates.push((name, size, false));
        }
    }
    for (&name, artifact) in fresh {
        if state.history.is_materialized(name) {
            continue;
        }
        let Some(node) = state.history.node_of(name) else { continue };
        let role = state.history.graph.node(node).role;
        if matches!(role, ArtifactRole::Raw | ArtifactRole::Source) {
            continue;
        }
        candidates.push((name, artifact.size_bytes() as u64, true));
    }
    // Utility: freq × recreation_cost / size.
    let mut ranked: Vec<(f64, ArtifactName, u64, bool)> = candidates
        .into_iter()
        .map(|(name, size, is_fresh)| {
            let stats = state.history.stats_of(name);
            let utility =
                stats.freq.max(1) as f64 * stats.compute_cost.max(1e-9) / size.max(1) as f64;
            (utility, name, size, is_fresh)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    let mut used = 0u64;
    let mut keep: Vec<(ArtifactName, bool)> = Vec::new();
    for (_, name, size, is_fresh) in ranked {
        if used + size <= state.budget_bytes {
            used += size;
            keep.push((name, is_fresh));
        }
    }
    let mut evicted = 0;
    let keep_names: Vec<ArtifactName> = keep.iter().map(|&(n, _)| n).collect();
    for name in state.history.materialized().collect::<Vec<_>>() {
        if !keep_names.contains(&name) {
            state.history.evict(name);
            state.store.remove(name);
            evicted += 1;
        }
    }
    let mut stored = 0;
    for (name, is_fresh) in keep {
        if is_fresh {
            state.store.put(name, &fresh[&name]);
            state.history.materialize(name);
            stored += 1;
        }
    }
    (stored, evicted)
}

impl Method for Collab {
    fn name(&self) -> &'static str {
        "Collab"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.state.register_dataset(id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<MethodReport, SubmitError> {
        let start = Instant::now();
        let aug = self.state.build_augmentation(spec, true);
        let costs = self.state.costs(&aug);
        let targets = aug.targets.clone();
        let plan = collab_plan(&aug, &costs, &targets).ok_or(SubmitError::NoPlan)?;
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let optimize_seconds = start.elapsed().as_secs_f64();
        let (mut report, fresh) = self.state.run(&aug, &plan, planned, optimize_seconds)?;
        if self.state.budget_bytes > 0 {
            let (stored, evicted) = collab_materialize(&mut self.state, &fresh);
            report.stored = stored;
            report.evicted = evicted;
        }
        Ok(report)
    }

    fn retrieve(&mut self, requests: &[ArtifactRequest]) -> Result<MethodReport, SubmitError> {
        let start = Instant::now();
        let names: Vec<ArtifactName> =
            requests.iter().map(|r| r.name(NamingMode::Physical)).collect();
        let aug = self.state.build_request_augmentation(&names).ok_or(SubmitError::NoPlan)?;
        let costs = self.state.costs(&aug);
        let targets = aug.targets.clone();
        let plan = collab_plan(&aug, &costs, &targets).ok_or(SubmitError::NoPlan)?;
        let planned: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        let optimize_seconds = start.elapsed().as_secs_f64();
        let (report, _) = self.state.run(&aug, &plan, planned, optimize_seconds)?;
        Ok(report)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.state.cumulative_seconds
    }

    fn budget_bytes(&self) -> u64 {
        self.state.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.state.history.artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_pipeline::{ArtifactHandle, StepId};
    use hyppo_tensor::{Matrix, SeededRng, TaskKind};

    fn dataset(n: usize) -> Dataset {
        let mut rng = SeededRng::new(13);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::new();
        for r in 0..n {
            for c in 0..3 {
                x.set(r, c, rng.uniform(-1.0, 1.0));
            }
            y.push(x.get(r, 1));
        }
        Dataset::new(x, y, (0..3).map(|i| format!("f{i}")).collect(), TaskKind::Regression)
    }

    fn spec(seed: i64, trees: i64) -> PipelineSpec {
        let mut s = PipelineSpec::new();
        let d = s.load("data");
        let (train, test) = s.split(d, Config::new().with_i("seed", seed));
        let cfg = Config::new().with_i("n_trees", trees).with_i("max_depth", 7).with_i("seed", 5);
        let model = s.fit(LogicalOp::RandomForest, 0, cfg.clone(), &[train]);
        let preds = s.predict(LogicalOp::RandomForest, 0, cfg, model, test);
        s.evaluate(LogicalOp::Mse, preds, test);
        s
    }

    #[test]
    fn materialization_enables_reuse_on_resubmission() {
        let mut c = Collab::new(64 * 1024 * 1024);
        c.register_dataset("data", dataset(1500));
        let first = c.submit(spec(0, 25)).unwrap();
        assert!(first.stored > 0);
        let second = c.submit(spec(0, 25)).unwrap();
        assert!(second.loads >= 1);
        assert!(second.execution_seconds < first.execution_seconds);
    }

    #[test]
    fn experiment_graph_spans_all_prior_pipelines() {
        // Unlike Helix, Collab keeps artifacts from ALL prior pipelines.
        let mut c = Collab::new(64 * 1024 * 1024);
        c.register_dataset("data", dataset(600));
        c.submit(spec(0, 10)).unwrap();
        let after_first: Vec<_> = c.state.history.materialized().collect();
        assert!(!after_first.is_empty());
        c.submit(spec(1, 10)).unwrap();
        // Budget is ample: run-1 artifacts survive run 2.
        for name in after_first {
            assert!(
                c.state.history.is_materialized(name),
                "Collab keeps the full experiment graph under ample budget"
            );
        }
    }

    #[test]
    fn linear_heuristic_can_be_suboptimal_on_shared_subgraphs() {
        // Construct an augmentation where two targets share an expensive
        // upstream: the heuristic double-counts it and wrongly prefers two
        // separate loads.
        use hyppo_core::optimizer::{PlanRequest, Planner};
        use hyppo_pipeline::{EdgeLabel, NodeLabel};
        let mut graph = hyppo_hypergraph::HyperGraph::new();
        let s = graph.add_node(NodeLabel::source());
        let mk = |name: u64| NodeLabel {
            name: ArtifactName(name),
            kind: hyppo_ml::ArtifactKind::Data,
            role: ArtifactRole::Train,
            hint: "x".into(),
            size_bytes: Some(8),
        };
        let shared = graph.add_node(mk(1));
        let t1 = graph.add_node(mk(2));
        let t2 = graph.add_node(mk(3));
        let load_label = || EdgeLabel {
            op: LogicalOp::LoadDataset,
            task: hyppo_ml::TaskType::Load,
            impl_index: 0,
            config: Config::new(),
            dataset: None,
        };
        let task_label = |op| EdgeLabel::task(op, hyppo_ml::TaskType::Transform, 0, Config::new());
        // shared derivable only by compute from s (cost 10).
        let e_shared = graph.add_edge(vec![s], vec![shared], task_label(LogicalOp::Normalizer));
        // t1, t2: compute from shared (cost 1 each) or load (cost 7 each).
        let e_c1 = graph.add_edge(vec![shared], vec![t1], task_label(LogicalOp::LogTransform));
        let e_c2 = graph.add_edge(vec![shared], vec![t2], task_label(LogicalOp::TimeFeatures));
        let e_l1 = graph.add_edge(vec![s], vec![t1], load_label());
        let e_l2 = graph.add_edge(vec![s], vec![t2], load_label());
        let mut costs = vec![0.0; graph.edge_bound()];
        costs[e_shared.index()] = 10.0;
        costs[e_c1.index()] = 1.0;
        costs[e_c2.index()] = 1.0;
        costs[e_l1.index()] = 7.0;
        costs[e_l2.index()] = 7.0;
        let aug = Augmentation {
            graph,
            source: s,
            targets: vec![t1, t2],
            node_by_name: Default::default(),
            new_tasks: vec![],
            pipeline_edges: vec![],
        };
        // Heuristic: rc(t1) = min(7, 1+10) = 7 → load both: cost 14.
        let plan = collab_plan(&aug, &costs, &[t1, t2]).unwrap();
        let plan_cost: f64 = plan.iter().map(|&e| costs[e.index()]).sum();
        assert!((plan_cost - 14.0).abs() < 1e-9, "heuristic picks the loads: {plan_cost}");
        // Optimal: compute shared once (10) + 1 + 1 = 12.
        let exact =
            Planner::exact().plan(&aug.graph, PlanRequest::new(&costs, s, &[t1, t2])).unwrap();
        assert!((exact.cost - 12.0).abs() < 1e-9);
        assert!(plan_cost > exact.cost, "Collab is 'good enough', not optimal");
    }

    #[test]
    fn retrieval_uses_materialized_artifacts() {
        let mut c = Collab::new(64 * 1024 * 1024);
        c.register_dataset("data", dataset(1000));
        c.submit(spec(0, 20)).unwrap();
        let req = ArtifactRequest {
            spec: spec(0, 20),
            handle: ArtifactHandle { step: StepId(2), output: 0 }, // the model
        };
        let r = c.retrieve(&[req]).unwrap();
        assert!(r.loads >= 1, "the model should load, not refit");
        assert_eq!(r.tasks_executed, 1, "a single load suffices");
    }
}
