//! Collab-E: the exhaustive equivalence-aware variant used as the
//! comparison point of the paper's scalability study (§V-B5, Fig. 10).
//!
//! "COLLAB-E … generates a DAG for each combination of alternatives, and
//! executes the Collab reuse algorithm for each of them. COLLAB-E, in
//! contrast to COLLAB, finds the optimal plan under equivalences."
//!
//! For every artifact with `m` alternative producers, pick one; each pick
//! combination induces a DAG whose (unique) backward closure from the
//! targets is that combination's plan. The minimum over all combinations
//! is optimal — at `O(m^n)` cost, which is exactly the curve Fig. 10
//! reproduces.

use hyppo_hypergraph::{EdgeId, HyperGraph, NodeId};

/// Exhaustively find the optimal plan under alternatives by enumerating
/// per-artifact producer choices. Returns `(edges, cost)`; `None` when the
/// targets are underivable (or when a safety cap on combinations is hit).
pub fn collab_e_plan<N, E>(
    graph: &HyperGraph<N, E>,
    costs: &[f64],
    source: NodeId,
    targets: &[NodeId],
    max_combinations: u64,
) -> Option<(Vec<EdgeId>, f64)> {
    // Artifacts with at least one producer; their backward stars are the
    // choice dimensions.
    let nodes: Vec<NodeId> =
        graph.node_ids().filter(|&v| v != source && !graph.bstar(v).is_empty()).collect();
    let dims: Vec<&[EdgeId]> = nodes.iter().map(|&v| graph.bstar(v)).collect();

    // Combination count with overflow care.
    let mut combos: u64 = 1;
    for d in &dims {
        combos = combos.saturating_mul(d.len() as u64);
        if combos > max_combinations {
            return None;
        }
    }

    let node_pos: Vec<Option<usize>> = {
        let mut pos = vec![None; graph.node_bound()];
        for (i, &v) in nodes.iter().enumerate() {
            pos[v.index()] = Some(i);
        }
        pos
    };

    let mut best: Option<(Vec<EdgeId>, f64)> = None;
    let mut choice = vec![0usize; dims.len()];
    loop {
        // Walk the induced DAG backward from the targets.
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut cost = 0.0;
        let mut ok = true;
        let mut seen = vec![false; graph.node_bound()];
        let mut stack: Vec<NodeId> = targets.to_vec();
        while let Some(v) = stack.pop() {
            if v == source || seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            let Some(pos) = node_pos[v.index()] else {
                ok = false; // no producer at all
                break;
            };
            let e = dims[pos][choice[pos]];
            if !edges.contains(&e) {
                edges.push(e);
                cost += costs[e.index()];
                for &u in graph.tail(e) {
                    stack.push(u);
                }
            }
        }
        if ok && best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((edges, cost));
        }

        // Odometer.
        let mut pos = 0;
        loop {
            if pos == choice.len() {
                return best;
            }
            choice[pos] += 1;
            if choice[pos] < dims[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_core::optimizer::{PlanRequest, Planner};
    use hyppo_tensor::SeededRng;

    type G = HyperGraph<u32, ()>;

    #[test]
    fn matches_exact_search_on_alternative_graphs() {
        for seed in 0..20 {
            let mut rng = SeededRng::new(seed);
            let mut g = G::new();
            let s = g.add_node(0);
            let mut nodes = vec![s];
            let mut costs = Vec::new();
            for i in 0..4 {
                let v = g.add_node(i + 1);
                for _ in 0..2 {
                    let tail = vec![nodes[rng.index(nodes.len())]];
                    let e = g.add_edge(tail, vec![v], ());
                    costs.resize(e.index() + 1, 0.0);
                    costs[e.index()] = (1 + rng.index(10)) as f64;
                }
                nodes.push(v);
            }
            let target = *nodes.last().unwrap();
            let (edges, cost) = collab_e_plan(&g, &costs, s, &[target], 1_000_000).unwrap();
            let exact = Planner::exact().plan(&g, PlanRequest::new(&costs, s, &[target])).unwrap();
            assert!(
                (cost - exact.cost).abs() < 1e-9,
                "seed {seed}: collab-e {cost} vs exact {}",
                exact.cost
            );
            assert!(!edges.is_empty());
        }
    }

    #[test]
    fn combination_cap_aborts_cleanly() {
        let mut g = G::new();
        let s = g.add_node(0);
        let mut prev = s;
        let mut costs = Vec::new();
        for i in 0..30 {
            let v = g.add_node(i + 1);
            for _ in 0..2 {
                let e = g.add_edge(vec![prev], vec![v], ());
                costs.resize(e.index() + 1, 1.0);
            }
            prev = v;
        }
        assert!(collab_e_plan(&g, &costs, s, &[prev], 1000).is_none());
    }

    #[test]
    fn underivable_target_returns_none() {
        let mut g = G::new();
        let s = g.add_node(0);
        let orphan = g.add_node(1);
        assert!(collab_e_plan(&g, &[], s, &[orphan], 1000).is_none());
    }

    #[test]
    fn single_combination_is_the_closure() {
        let mut g = G::new();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let b = g.add_node(2);
        let e0 = g.add_edge(vec![s], vec![a], ());
        let e1 = g.add_edge(vec![a], vec![b], ());
        let costs = vec![2.0, 3.0];
        let (edges, cost) = collab_e_plan(&g, &costs, s, &[b], 100).unwrap();
        assert_eq!(cost, 5.0);
        assert_eq!(edges.len(), 2);
        let _ = (e0, e1);
    }
}
