//! Dinic's maximum-flow / minimum-cut algorithm over `f64` capacities.
//!
//! The substrate for Helix's project-selection reuse planner (the paper
//! notes Helix "tackles the optimal reuse plan as a solvable project
//! selection problem using polynomial-time algorithms"; project selection
//! reduces to min-cut).

/// A directed flow network with `f64` capacities.
#[derive(Clone, Debug)]
pub struct Dinic {
    /// Adjacency: per node, indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Edge storage; edge `i ^ 1` is the residual twin of edge `i`.
    edges: Vec<FlowEdge>,
}

#[derive(Clone, Copy, Debug)]
struct FlowEdge {
    to: usize,
    cap: f64,
}

const EPS: f64 = 1e-12;

impl Dinic {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dinic { adj: vec![Vec::new(); n], edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add a directed edge `from → to` with the given capacity.
    /// `f64::INFINITY` capacities are supported (hard constraints).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        assert!(cap >= 0.0, "capacities must be non-negative");
        let id = self.edges.len();
        self.edges.push(FlowEdge { to, cap });
        self.edges.push(FlowEdge { to: from, cap: 0.0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    /// Compute the maximum flow (= minimum cut value) from `s` to `t`.
    /// Returns `f64::INFINITY` if `t` is reachable through
    /// infinite-capacity paths only.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t);
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                flow += pushed;
                if flow.is_infinite() {
                    return f64::INFINITY;
                }
            }
        }
        flow
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<u32>> {
        let mut level = vec![u32::MAX; self.adj.len()];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v] {
                let e = self.edges[eid];
                if e.cap > EPS && level[e.to] == u32::MAX {
                    level[e.to] = level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        (level[t] != u32::MAX).then_some(level)
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: f64, level: &[u32], iter: &mut [usize]) -> f64 {
        if v == t {
            return pushed;
        }
        while iter[v] < self.adj[v].len() {
            let eid = self.adj[v][iter[v]];
            let e = self.edges[eid];
            if e.cap > EPS && level[e.to] == level[v] + 1 {
                let d = self.dfs(e.to, t, pushed.min(e.cap), level, iter);
                if d > EPS {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0.0
    }

    /// After [`Dinic::max_flow`], the set of nodes on the source side of a
    /// minimum cut (reachable in the residual network).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.adj.len()];
        side[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &eid in &self.adj[v] {
                let e = self.edges[eid];
                if e.cap > EPS && !side[e.to] {
                    side[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_bottleneck() {
        // s -(3)-> a -(2)-> t : flow = 2.
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 3.0);
        d.add_edge(1, 2, 2.0);
        assert!((d.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3.0);
        d.add_edge(1, 3, 3.0);
        d.add_edge(0, 2, 4.0);
        d.add_edge(2, 3, 2.0);
        assert!((d.max_flow(0, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS figure: max flow 23.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16.0);
        d.add_edge(0, 2, 13.0);
        d.add_edge(1, 2, 10.0);
        d.add_edge(2, 1, 4.0);
        d.add_edge(1, 3, 12.0);
        d.add_edge(3, 2, 9.0);
        d.add_edge(2, 4, 14.0);
        d.add_edge(4, 3, 7.0);
        d.add_edge(3, 5, 20.0);
        d.add_edge(4, 5, 4.0);
        assert!((d.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_partition_is_consistent() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(0, 2, 10.0);
        d.add_edge(1, 3, 10.0);
        d.add_edge(2, 3, 1.0);
        let flow = d.max_flow(0, 3);
        assert!((flow - 2.0).abs() < 1e-9);
        let side = d.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut value recomputed from the partition equals the flow.
        // Edges: (0,1,1), (0,2,10), (1,3,10), (2,3,1).
        let caps = [(0, 1, 1.0), (0, 2, 10.0), (1, 3, 10.0), (2, 3, 1.0)];
        let cut: f64 =
            caps.iter().filter(|&&(a, b, _)| side[a] && !side[b]).map(|&(_, _, c)| c).sum();
        assert!((cut - flow).abs() < 1e-9);
    }

    #[test]
    fn infinite_edges_act_as_constraints() {
        // Cutting must avoid the ∞ edge: s->a (inf), a->t (5) → flow 5.
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, f64::INFINITY);
        d.add_edge(1, 2, 5.0);
        assert!((d.max_flow(0, 2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fully_infinite_path_returns_infinity() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, f64::INFINITY);
        d.add_edge(1, 2, f64::INFINITY);
        assert_eq!(d.max_flow(0, 2), f64::INFINITY);
    }

    #[test]
    fn disconnected_graph_has_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5.0);
        assert_eq!(d.max_flow(0, 2), 0.0);
    }

    #[test]
    fn zero_capacity_edges_are_legal() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 0.0);
        assert_eq!(d.max_flow(0, 1), 0.0);
    }
}
