//! Reimplementations of the systems HYPPO is evaluated against (paper
//! §V-A-c):
//!
//! - [`no_opt`] — **NoOptimization**: execute every pipeline verbatim;
//! - [`sharing`] — **Sharing**: common-subexpression elimination only;
//! - [`helix`] — **Helix** (Xin et al., VLDB'18): optimal load-vs-compute
//!   reuse via a project-selection min-cut (our from-scratch [`maxflow`]
//!   Dinic), with materialization restricted to the immediately preceding
//!   pipeline;
//! - [`collab`] — **Collab** (Derakhshan et al., SIGMOD'20): linear-time
//!   reuse heuristic plus utility-based materialization over the full
//!   experiment graph;
//! - [`collab_e`] — **Collab-E**: the exhaustive variant used in the
//!   paper's scalability study (Fig. 10), enumerating every combination of
//!   alternatives.
//!
//! All reuse baselines see pipelines through **physical artifact naming**
//! ([`hyppo_pipeline::NamingMode::Physical`]): artifacts produced by
//! different implementations of the same logical operator never collide,
//! so cross-implementation equivalences are invisible to them — exactly
//! the limitation HYPPO lifts.

pub mod collab;
pub mod collab_e;
pub mod helix;
pub mod maxflow;
pub mod method;
pub mod no_opt;
pub mod sharing;

pub use collab::{collab_plan, Collab};
pub use collab_e::collab_e_plan;
pub use helix::helix_plan;
pub use helix::Helix;
pub use maxflow::Dinic;
pub use method::{
    ArtifactRequest, BaselineState, HyppoMethod, Method, MethodReport, SessionMethod,
};
pub use no_opt::NoOptimization;
pub use sharing::Sharing;
