//! The actor runtime: tenant mailboxes scheduled over the shared
//! work-stealing scheduler, bounded admission, and group-committed
//! durability.
//!
//! Each tenant session is an **actor**: a FIFO mailbox of submission
//! tickets that at most one worker drains at a time, so a tenant's
//! submissions execute in exactly the order they were admitted no matter
//! how many workers the pool has. *Runnable* tenants (not running, mail
//! waiting) circulate through a [`hyppo_sched::Scheduler`] as tenant
//! indices: submitters inject on the empty→non-empty mailbox transition,
//! and the worker that finishes a tenant's turn re-spawns it onto its own
//! deque — lock-free — when mail remains, which keeps a busy tenant hot on
//! one worker until a sibling steals it. Planning happens against the
//! backend's epoch snapshots, so tenants only serialize at the commit
//! point — never across plan search.
//!
//! Admission is bounded per tenant: a full mailbox either rejects new
//! submissions with [`ServeError::Busy`] ([`AdmissionPolicy::Reject`]) or
//! blocks the submitter until a slot frees ([`AdmissionPolicy::Block`]).
//!
//! Scheduler invariant: a tenant index is in the scheduler (some deque or
//! the injector) **iff** it is not currently running and its mailbox is
//! non-empty. Enqueue injects the tenant when its mailbox transitions
//! empty → non-empty while idle; the worker that just processed its turn
//! re-spawns it if mail remains. Exactly one of those happens per
//! transition, so a tenant has at-most-one in-flight message and its copy
//! appears at most once in the whole scheduler — stealing moves the copy,
//! never duplicates it (DESIGN.md §16 restates the argument).

use hyppo_core::system::SubmitError;
use hyppo_persist::GroupCommitWal;
use hyppo_pipeline::{ArtifactName, PipelineSpec};
use hyppo_runtime::{SharedBatchRun, SharedHyppo, SharedRun};
use hyppo_sched::{SchedStats, Scheduler, Step, Worker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What a tenant's full mailbox does to new submissions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast: `submit` returns [`ServeError::Busy`] and the rejection
    /// is counted in [`ServeMetrics::rejected`].
    Reject,
    /// Backpressure: `submit` blocks until a mailbox slot frees (or the
    /// runtime shuts down).
    #[default]
    Block,
}

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining tenant mailboxes.
    pub workers: usize,
    /// Wavefront executor threads per plan.
    pub plan_workers: usize,
    /// Per-tenant mailbox capacity (admission bound).
    pub mailbox_capacity: usize,
    /// Full-mailbox behavior.
    pub admission: AdmissionPolicy,
    /// Flush the attached group-commit WAL after this many commits (an
    /// idle runtime flushes whatever is pending regardless). `1` degrades
    /// to per-submission fsync.
    pub commit_group: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            plan_workers: 2,
            mailbox_capacity: 64,
            admission: AdmissionPolicy::Block,
            commit_group: 8,
        }
    }
}

/// Serving-layer failure. `Clone` so every handle to a shared ticket can
/// observe the same outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission rejected the submission: the tenant's mailbox is full
    /// under [`AdmissionPolicy::Reject`].
    Busy,
    /// The submission was cancelled before it began executing.
    Cancelled,
    /// The runtime is shutting down (or already shut down).
    ShutDown,
    /// The backend found no executable plan.
    NoPlan,
    /// Plan execution failed (stringified [`ExecError`](hyppo_core::executor::ExecError)).
    Exec(String),
    /// The submission executed but the durability hook failed.
    Durability(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy => write!(f, "admission queue full"),
            ServeError::Cancelled => write!(f, "submission cancelled"),
            ServeError::ShutDown => write!(f, "serving runtime is shut down"),
            ServeError::NoPlan => write!(f, "no executable plan for the requested targets"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::Durability(e) => write!(f, "durability failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SubmitError> for ServeError {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::NoPlan => ServeError::NoPlan,
            SubmitError::Exec(e) => ServeError::Exec(e.to_string()),
            SubmitError::Durability(e) => ServeError::Durability(e.to_string()),
            SubmitError::Serving(e) => ServeError::Exec(e),
        }
    }
}

impl From<ServeError> for SubmitError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::NoPlan => SubmitError::NoPlan,
            other => SubmitError::Serving(other.to_string()),
        }
    }
}

/// One unit of tenant work.
#[derive(Debug)]
pub(crate) enum Request {
    /// `submit`: one pipeline.
    Submit(PipelineSpec),
    /// `submit_batch`: jointly planned pipelines.
    Batch(Vec<PipelineSpec>),
    /// `retrieve`: previously computed artifacts by name.
    Retrieve(Vec<ArtifactName>),
}

/// What a finished request produced.
#[derive(Clone, Debug)]
pub(crate) enum Response {
    /// A single submission or retrieval.
    One(SharedRun),
    /// A batch submission.
    Many(SharedBatchRun),
}

/// Per-ticket timing and staleness, filled in as the ticket progresses.
#[derive(Clone, Copy, Debug, Default)]
pub struct TicketStats {
    /// Seconds the ticket sat in the mailbox before a worker picked it up.
    pub mailbox_wait_seconds: f64,
    /// Seconds the backend spent serving it (plan + execute + commit).
    pub service_seconds: f64,
    /// End-to-end seconds from admission to completion.
    pub latency_seconds: f64,
    /// Snapshot-staleness of its commit ([`EpochStamp::lag`]): how many
    /// other tenants' commits landed between its snapshot and its commit.
    ///
    /// [`EpochStamp::lag`]: hyppo_runtime::EpochStamp::lag
    pub epoch_lag: u64,
}

#[derive(Debug)]
pub(crate) enum TicketState {
    Queued,
    Running,
    Done(Result<Response, ServeError>),
}

/// The shared state behind one submission: handles wait on it, workers
/// resolve it, `cancel` races both.
#[derive(Debug)]
pub(crate) struct Ticket {
    state: Mutex<TicketState>,
    done: Condvar,
    enqueued_at: Instant,
    stats: Mutex<TicketStats>,
}

impl Ticket {
    fn new() -> Arc<Self> {
        Arc::new(Ticket {
            state: Mutex::new(TicketState::Queued),
            done: Condvar::new(),
            enqueued_at: Instant::now(),
            stats: Mutex::new(TicketStats::default()),
        })
    }

    /// Queued → Running, the execute-once gate: exactly one of
    /// `begin_execution` and a queued-state `cancel` wins, so a ticket is
    /// never both executed and cancelled, and never executed twice.
    fn begin_execution(&self) -> bool {
        let mut state = self.lock_state();
        match *state {
            TicketState::Queued => {
                *state = TicketState::Running;
                true
            }
            // Cancelled while queued (already resolved) — skip.
            _ => false,
        }
    }

    fn finish(&self, result: Result<Response, ServeError>) {
        *self.lock_state() = TicketState::Done(result);
        self.done.notify_all();
    }

    pub(crate) fn cancel(&self) -> bool {
        let mut state = self.lock_state();
        if matches!(*state, TicketState::Queued) {
            *state = TicketState::Done(Err(ServeError::Cancelled));
            self.done.notify_all();
            true
        } else {
            false
        }
    }

    pub(crate) fn wait(&self) -> Result<Response, ServeError> {
        let mut state = self.lock_state();
        loop {
            if let TicketState::Done(result) = &*state {
                return result.clone();
            }
            state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn try_result(&self) -> Option<Result<Response, ServeError>> {
        match &*self.lock_state() {
            TicketState::Done(result) => Some(result.clone()),
            _ => None,
        }
    }

    pub(crate) fn stats(&self) -> TicketStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_state(&self) -> MutexGuard<'_, TicketState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug)]
struct Mail {
    ticket: Arc<Ticket>,
    request: Request,
}

#[derive(Debug, Default)]
struct TenantState {
    mailbox: VecDeque<Mail>,
    /// A worker is currently processing one of this tenant's messages.
    running: bool,
}

#[derive(Debug, Default)]
struct TenantTable {
    tenants: Vec<TenantState>,
    /// Workers currently processing a message.
    active: usize,
    /// Total queued messages across all mailboxes.
    queued: usize,
    shutdown: bool,
}

/// Atomic gauges. All loads/stores are `Relaxed`: these are monitoring
/// counters read through snapshots, never used for synchronization — the
/// scheduler mutex orders everything that matters.
#[derive(Debug, Default)]
struct Gauges {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    peak_queue_depth: AtomicUsize,
    mailbox_wait_nanos: AtomicU64,
    service_nanos: AtomicU64,
    latency_nanos: AtomicU64,
    epoch_lag_sum: AtomicU64,
    epoch_lag_max: AtomicU64,
    commits_since_flush: AtomicUsize,
    group_flushes: AtomicU64,
}

/// A point-in-time snapshot of the serving runtime's health gauges,
/// returned by `Client::metrics()` and `ServeRuntime::metrics()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeMetrics {
    /// Submissions admitted (including still-queued and cancelled ones).
    pub submitted: u64,
    /// Submissions that finished executing.
    pub completed: u64,
    /// Submissions turned away by a full mailbox under
    /// [`AdmissionPolicy::Reject`].
    pub rejected: u64,
    /// Submissions cancelled before execution began.
    pub cancelled: u64,
    /// Messages currently queued across all tenant mailboxes.
    pub queue_depth: usize,
    /// Largest `queue_depth` observed since the runtime started.
    pub peak_queue_depth: usize,
    /// Total seconds completed submissions spent waiting in mailboxes.
    pub mailbox_wait_seconds: f64,
    /// Total seconds the backend spent serving completed submissions.
    pub service_seconds: f64,
    /// Total admission-to-completion seconds of completed submissions.
    pub latency_seconds: f64,
    /// Mean snapshot-staleness (commits by other tenants between a
    /// submission's snapshot and its commit) across completed submissions.
    pub epoch_lag_mean: f64,
    /// Worst snapshot-staleness observed.
    pub epoch_lag_max: u64,
    /// Group-commit WAL flushes (each one fsync, covering every commit
    /// since the previous flush). Zero when no durability is attached.
    pub group_flushes: u64,
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) backend: Arc<SharedHyppo>,
    pub(crate) config: ServeConfig,
    table: Mutex<TenantTable>,
    /// Runnable tenant indices, scheduled work-stealing style; parking and
    /// wakeups live inside the scheduler.
    queue: Arc<Scheduler<usize>>,
    /// Signals blocked submitters: a mailbox slot freed, or shutdown.
    admit_cv: Condvar,
    durability: Mutex<Option<GroupCommitWal>>,
    gauges: Gauges,
}

impl Shared {
    fn lock_table(&self) -> MutexGuard<'_, TenantTable> {
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new tenant actor; returns its index.
    pub(crate) fn add_tenant(&self) -> usize {
        let mut table = self.lock_table();
        table.tenants.push(TenantState::default());
        table.tenants.len() - 1
    }

    /// Admit one request into `tenant`'s mailbox, applying the configured
    /// backpressure. Returns the ticket future handles wait on.
    pub(crate) fn enqueue(
        &self,
        tenant: usize,
        request: Request,
    ) -> Result<Arc<Ticket>, ServeError> {
        let mut table = self.lock_table();
        if table.shutdown {
            return Err(ServeError::ShutDown);
        }
        while table.tenants[tenant].mailbox.len() >= self.config.mailbox_capacity {
            match self.config.admission {
                AdmissionPolicy::Reject => {
                    // hyppo-lint: allow(relaxed-ordering-justified) monitoring
                    // counter; the Err return itself carries the decision
                    self.gauges.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Busy);
                }
                AdmissionPolicy::Block => {
                    table = self.admit_cv.wait(table).unwrap_or_else(|e| e.into_inner());
                    if table.shutdown {
                        return Err(ServeError::ShutDown);
                    }
                }
            }
        }
        let ticket = Ticket::new();
        let was_empty = table.tenants[tenant].mailbox.is_empty();
        table.tenants[tenant].mailbox.push_back(Mail { ticket: Arc::clone(&ticket), request });
        table.queued += 1;
        // Exactly one injection per empty→non-empty transition while idle:
        // later submitters see a non-empty mailbox, and the tenant cannot
        // be claimed (hence re-spawned) before the injection below lands.
        let make_runnable = was_empty && !table.tenants[tenant].running;
        let depth = table.queued;
        drop(table);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauges;
        // `depth` was computed under the tenant-table lock, the atomics only
        // publish it to metrics readers
        self.gauges.submitted.fetch_add(1, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) peak-depth gauge; `depth` was computed under the tenant-table lock
        self.gauges.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
        if make_runnable {
            self.queue.inject(tenant);
        }
        Ok(ticket)
    }

    /// Worker main loop: service-mode turns over the scheduler until the
    /// runtime is drained and shut down.
    fn worker_loop(&self, mut w: Worker<'_, usize>) {
        loop {
            match w.next_step() {
                Step::Task(tenant) => {
                    let mail = {
                        let mut table = self.lock_table();
                        let mail = table.tenants[tenant]
                            .mailbox
                            .pop_front()
                            .expect("scheduler invariant: scheduled tenant has mail");
                        table.tenants[tenant].running = true;
                        table.active += 1;
                        table.queued -= 1;
                        mail
                    };
                    // A slot freed: wake one blocked submitter.
                    self.admit_cv.notify_one();

                    self.process(mail);

                    let again = {
                        let mut table = self.lock_table();
                        table.tenants[tenant].running = false;
                        table.active -= 1;
                        !table.tenants[tenant].mailbox.is_empty()
                    };
                    if again {
                        // ≤1 in-flight per tenant: only the worker that
                        // just finished this tenant's turn may requeue it,
                        // and it does so onto its own deque (hot path).
                        w.spawn(tenant);
                    }
                }
                Step::Idle(token) => {
                    let (drained, idle) = {
                        let table = self.lock_table();
                        let quiet = table.active == 0 && table.queued == 0;
                        (table.shutdown && quiet, quiet)
                    };
                    if drained {
                        // Idle + shutdown: make everything pending durable,
                        // then release the siblings still parked.
                        let _ = self.flush_durability();
                        w.scheduler().shutdown();
                        return;
                    }
                    if idle {
                        // Fully idle: opportunistically flush the commit
                        // group so durability never waits on new traffic.
                        let _ = self.flush_durability();
                    }
                    w.park(token);
                }
                Step::Shutdown => {
                    let _ = self.flush_durability();
                    return;
                }
            }
        }
    }

    /// Execute one mailbox message and resolve its ticket.
    fn process(&self, mail: Mail) {
        let Mail { ticket, request } = mail;
        if !ticket.begin_execution() {
            // Cancelled while queued; already resolved.
            // hyppo-lint: allow(relaxed-ordering-justified) monitoring counter
            self.gauges.cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mailbox_wait = ticket.enqueued_at.elapsed();
        let service_start = Instant::now();
        let backend = &*self.backend;
        let workers = self.config.plan_workers;
        let (result, commits, lag) = match request {
            Request::Submit(spec) => match backend.submit_shared(spec, workers) {
                Ok(run) => {
                    let lag = run.epochs.lag();
                    (Ok(Response::One(run)), 1, lag)
                }
                Err(e) => (Err(ServeError::from(e)), 0, 0),
            },
            Request::Batch(specs) => {
                let items = specs.len();
                match backend.submit_batch_shared(specs, workers) {
                    Ok(run) => {
                        let lag = run.epochs.lag();
                        (Ok(Response::Many(run)), items, lag)
                    }
                    Err(e) => (Err(ServeError::from(e)), 0, 0),
                }
            }
            Request::Retrieve(names) => match backend.retrieve_shared(&names, workers) {
                Ok(run) => {
                    let lag = run.epochs.lag();
                    (Ok(Response::One(run)), 1, lag)
                }
                Err(e) => (Err(ServeError::from(e)), 0, 0),
            },
        };
        let service = service_start.elapsed();
        let latency = ticket.enqueued_at.elapsed();

        // Group-commit boundary: the backend drained this commit's events
        // into the (buffering) hook; flush once per `commit_group` commits.
        let result = if commits > 0 { self.after_commits(commits, result) } else { result };

        {
            let mut stats = ticket.stats.lock().unwrap_or_else(|e| e.into_inner());
            *stats = TicketStats {
                mailbox_wait_seconds: mailbox_wait.as_secs_f64(),
                service_seconds: service.as_secs_f64(),
                latency_seconds: latency.as_secs_f64(),
                epoch_lag: lag,
            };
        }
        // Gauges before `finish`: a waiter woken by the ticket must see
        // its own completion reflected in `metrics()`.
        let g = &self.gauges;
        // hyppo-lint: allow(relaxed-ordering-justified) completion tallies are monitoring gauges; the ticket condvar below is the synchronization point
        g.completed.fetch_add(1, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauge only (see above)
        g.mailbox_wait_nanos.fetch_add(mailbox_wait.as_nanos() as u64, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauge only (see above)
        g.service_nanos.fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauge only (see above)
        g.latency_nanos.fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauge only (see above)
        g.epoch_lag_sum.fetch_add(lag, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) monitoring gauge only (see above)
        g.epoch_lag_max.fetch_max(lag, Ordering::Relaxed);
        ticket.finish(result);
    }

    /// Count `commits` toward the current group; flush when the group is
    /// full. A flush failure is surfaced on the triggering ticket (its
    /// in-memory submission already succeeded — same contract as
    /// [`SubmitError::Durability`]).
    fn after_commits(
        &self,
        commits: usize,
        result: Result<Response, ServeError>,
    ) -> Result<Response, ServeError> {
        // hyppo-lint: allow(relaxed-ordering-justified) group sizing is a
        // heuristic trigger; the WAL itself orders events under its own lock
        let since = self.gauges.commits_since_flush.fetch_add(commits, Ordering::Relaxed) + commits;
        if since >= self.config.commit_group {
            // hyppo-lint: allow(relaxed-ordering-justified) group-counter reset is a heuristic trigger; the WAL orders events under its own lock
            self.gauges.commits_since_flush.store(0, Ordering::Relaxed);
            if let Err(e) = self.flush_durability() {
                return result.and(Err(ServeError::Durability(e.to_string())));
            }
        }
        result
    }

    /// Flush the attached group-commit WAL, if any: one fsync covering
    /// every commit since the previous flush.
    pub(crate) fn flush_durability(&self) -> std::io::Result<()> {
        let wal = self.durability.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(wal) = wal {
            if wal.flush_group()? > 0 {
                // hyppo-lint: allow(relaxed-ordering-justified) monitoring counter
                self.gauges.group_flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    pub(crate) fn metrics(&self) -> ServeMetrics {
        let queue_depth = self.lock_table().queued;
        let g = &self.gauges;
        // hyppo-lint: allow(relaxed-ordering-justified) metrics snapshot read; tearing across concurrent updates is acceptable
        let completed = g.completed.load(Ordering::Relaxed);
        ServeMetrics {
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            submitted: g.submitted.load(Ordering::Relaxed),
            completed,
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            rejected: g.rejected.load(Ordering::Relaxed),
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            cancelled: g.cancelled.load(Ordering::Relaxed),
            queue_depth,
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            peak_queue_depth: g.peak_queue_depth.load(Ordering::Relaxed),
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            mailbox_wait_seconds: g.mailbox_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            service_seconds: g.service_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            latency_seconds: g.latency_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            epoch_lag_mean: if completed == 0 {
                0.0
            } else {
                // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
                g.epoch_lag_sum.load(Ordering::Relaxed) as f64 / completed as f64
            },
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            epoch_lag_max: g.epoch_lag_max.load(Ordering::Relaxed),
            // hyppo-lint: allow(relaxed-ordering-justified) metrics read (see above)
            group_flushes: g.group_flushes.load(Ordering::Relaxed),
        }
    }
}

/// The serving runtime: worker threads over one shared backend.
///
/// Create with [`ServeRuntime::new`], hand out per-tenant [`Client`]s via
/// [`ServeRuntime::client`], and tear down with [`ServeRuntime::shutdown`]
/// — which drains every mailbox, flushes durability, and returns the
/// backend.
///
/// [`Client`]: crate::Client
#[derive(Debug)]
pub struct ServeRuntime {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeRuntime {
    /// Start `config.workers` actor workers over `backend`.
    pub fn new(backend: SharedHyppo, config: ServeConfig) -> Self {
        ServeRuntime::over(Arc::new(backend), config)
    }

    /// Start the runtime over an already-shared backend (e.g. one that
    /// embedded code also reads through [`SharedHyppo::snapshot`]).
    pub fn over(backend: Arc<SharedHyppo>, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            backend,
            config,
            table: Mutex::new(TenantTable::default()),
            queue: Arc::new(Scheduler::new(config.workers.max(1))),
            admit_cv: Condvar::new(),
            durability: Mutex::new(None),
            gauges: Gauges::default(),
        });
        let queue = Arc::clone(&shared.queue);
        let worker_shared = Arc::clone(&shared);
        let pool = queue.spawn_pool("hyppo-serve", move |w| worker_shared.worker_loop(w));
        ServeRuntime { shared, workers: pool }
    }

    /// The embedded backend.
    pub fn backend(&self) -> &SharedHyppo {
        &self.shared.backend
    }

    /// Attach a group-commit WAL: the backend's commits buffer into it (in
    /// epoch order) and the runtime flushes one fsync per commit group and
    /// whenever it drains idle.
    pub fn attach_durability(&self, wal: GroupCommitWal) {
        self.shared.backend.attach_durability(Box::new(wal.clone()));
        *self.shared.durability.lock().unwrap_or_else(|e| e.into_inner()) = Some(wal);
    }

    /// Open a new tenant session.
    pub fn client(&self) -> crate::Client {
        crate::Client::new(Arc::clone(&self.shared), self.shared.add_tenant())
    }

    /// Runtime-wide gauges.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.metrics()
    }

    /// Traffic counters of the underlying work-stealing scheduler (tenant
    /// turns claimed locally, stolen, spilled, …) — reported by the
    /// scheduler bench; purely observational.
    pub fn scheduler_stats(&self) -> SchedStats {
        self.shared.queue.stats()
    }

    /// Graceful shutdown: refuse new submissions, drain every mailbox,
    /// flush durability, join the workers, and return the backend (the
    /// sole `Arc` if every client/handle was dropped).
    pub fn shutdown(mut self) -> Result<Arc<SharedHyppo>, ServeError> {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers flushed on drain, but cover the no-worker edge and any
        // events a final `flush_durability` race left behind.
        self.shared.flush_durability().map_err(|e| ServeError::Durability(e.to_string()))?;
        Ok(Arc::clone(&self.shared.backend))
    }

    fn begin_shutdown(&self) {
        let mut table = self.shared.lock_table();
        table.shutdown = true;
        drop(table);
        // Parked workers re-evaluate the drain condition; blocked
        // submitters observe the shutdown flag.
        self.shared.queue.wake_all();
        self.shared.admit_cv.notify_all();
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
            let _ = self.shared.flush_durability();
        }
    }
}
