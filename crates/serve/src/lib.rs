//! # hyppo-serve — the multi-tenant serving layer
//!
//! HYPPO's reuse compounds when it runs as a long-lived service: many
//! analysts iterating on pipelines against one shared history, each new
//! submission planning over everything every tenant computed before it.
//! This crate turns the embedded [`SharedHyppo`] backend into that
//! service:
//!
//! - **Sessions are actors.** Each tenant owns a FIFO mailbox of
//!   submission tickets; a thread-pool of workers drains runnable tenants
//!   one message at a time, so a tenant's submissions execute in
//!   admission order while tenants interleave freely
//!   ([`ServeRuntime`]).
//! - **Admission is bounded.** A full mailbox rejects with
//!   [`ServeError::Busy`] or blocks the submitter, per
//!   [`AdmissionPolicy`] — backpressure instead of unbounded queues.
//! - **Reads are epoch snapshots.** Planners run against immutable
//!   [`CatalogVersion`](hyppo_runtime::CatalogVersion) snapshots while
//!   other tenants commit; every result carries its snapshot/commit
//!   epochs, and DESIGN.md §14 proves a plan at epoch `E` is unaffected
//!   by commits `> E`. Per-tenant results are **bit-identical** to
//!   replaying that tenant alone at equal history epochs (the
//!   determinism suite enforces this across 50+ seeds).
//! - **Durability group-commits.** With a
//!   [`GroupCommitWal`](hyppo_persist::GroupCommitWal) attached, commit
//!   epochs buffer in order and the runtime pays one fsync per commit
//!   group — the epoch boundary is the WAL linearization point.
//!
//! The public surface is the [`Client`]: [`Client::submit`] returns a
//! [`SubmissionHandle`] with `wait()` / `try_report()` / `cancel()`;
//! [`Client::submit_batch`] returns a [`BatchHandle`]; `Client` also
//! implements the core [`Session`](hyppo_core::Session) trait so every
//! harness written against it drives the serving layer unchanged.
//!
//! ```
//! use hyppo_serve::{ServeConfig, ServeRuntime};
//! use hyppo_runtime::SharedHyppo;
//! use hyppo_core::HyppoConfig;
//! # use hyppo_workloads::{taxi, ensemble_wl::wide_ensemble_spec};
//!
//! let runtime = ServeRuntime::new(
//!     SharedHyppo::new(HyppoConfig { budget_bytes: 1 << 26, ..Default::default() }),
//!     ServeConfig::default(),
//! );
//! let client = runtime.client();
//! client.register_dataset("taxi", taxi::generate(200, 5));
//! let handle = client.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
//! let report = handle.wait().unwrap();
//! assert!(report.tasks_executed > 0);
//! let backend = runtime.shutdown().unwrap();
//! # let _ = backend;
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod runtime;
pub mod sessions;

pub use client::{BatchHandle, Client, CompletedSubmission, SubmissionHandle};
pub use runtime::{
    AdmissionPolicy, ServeConfig, ServeError, ServeMetrics, ServeRuntime, TicketStats,
};
pub use sessions::{
    run_sessions_concurrent, ConcurrentSessions, RuntimeMetrics, SessionReport, SessionsOutcome,
};

// Re-exported so serving callers see one coherent API without importing
// the runtime crate for the common types.
pub use hyppo_runtime::{EpochStamp, SharedHyppo};
