//! The tenant-facing API: [`Client`] and its submission handles.
//!
//! A [`Client`] is one tenant session against a [`ServeRuntime`]: its
//! submissions are admitted into the tenant's bounded mailbox and
//! executed FIFO by the actor runtime, concurrently with every other
//! tenant. `submit` returns immediately with a [`SubmissionHandle`] —
//! wait on it, poll it, or cancel it.
//!
//! ```text
//! let runtime = ServeRuntime::new(SharedHyppo::new(config), ServeConfig::default());
//! let client = runtime.client();
//! let handle = client.submit(spec)?;
//! let report = handle.wait()?;
//! ```
//!
//! [`Client`] also implements the core [`Session`] trait (`submit` =
//! admit + wait), so any harness written against `Session` — baselines,
//! benches, examples — can drive the serving layer unchanged.
//!
//! [`ServeRuntime`]: crate::ServeRuntime
//! [`Session`]: hyppo_core::Session

use crate::runtime::{Request, Response, ServeError, ServeMetrics, Shared, Ticket, TicketStats};
use hyppo_core::system::{BatchRunReport, RunReport, SubmitError};
use hyppo_core::Session;
use hyppo_pipeline::{ArtifactName, PipelineSpec};
use hyppo_runtime::{SharedBatchRun, SharedRun};
use hyppo_tensor::Dataset;
use std::sync::Arc;

/// One tenant's handle onto the serving runtime.
///
/// Cloning shares the tenant (and its FIFO mailbox); open a fresh tenant
/// with [`ServeRuntime::client`](crate::ServeRuntime::client) instead when
/// you want independent sessions.
#[derive(Clone, Debug)]
pub struct Client {
    shared: Arc<Shared>,
    tenant: usize,
}

impl Client {
    pub(crate) fn new(shared: Arc<Shared>, tenant: usize) -> Self {
        Client { shared, tenant }
    }

    /// This client's tenant index (stable for the runtime's lifetime).
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Submit one pipeline. Returns as soon as the submission is admitted
    /// to this tenant's mailbox; a full mailbox rejects with
    /// [`ServeError::Busy`] or blocks, per the configured
    /// [`AdmissionPolicy`](crate::AdmissionPolicy).
    pub fn submit(&self, spec: PipelineSpec) -> Result<SubmissionHandle, ServeError> {
        let ticket = self.shared.enqueue(self.tenant, Request::Submit(spec))?;
        Ok(SubmissionHandle { ticket })
    }

    /// Submit K pipelines as one jointly planned batch (the serving-layer
    /// form of `SharedHyppo::submit_batch_shared`).
    pub fn submit_batch(&self, specs: Vec<PipelineSpec>) -> Result<BatchHandle, ServeError> {
        let ticket = self.shared.enqueue(self.tenant, Request::Batch(specs))?;
        Ok(BatchHandle { ticket })
    }

    /// Retrieve previously computed artifacts by name (paper Scenario 2),
    /// planned over the shared history's alternatives.
    pub fn retrieve(&self, names: &[ArtifactName]) -> Result<SubmissionHandle, ServeError> {
        let ticket = self.shared.enqueue(self.tenant, Request::Retrieve(names.to_vec()))?;
        Ok(SubmissionHandle { ticket })
    }

    /// Register a raw dataset with the shared backend. Datasets are
    /// runtime-global (any tenant may reference them), so this commits
    /// directly instead of queueing through the mailbox.
    pub fn register_dataset(&self, id: &str, dataset: Dataset) {
        self.shared.backend.register_dataset(id, dataset);
    }

    /// A snapshot of the runtime-wide serving gauges: queue depth,
    /// mailbox wait, latency, epoch lag, admission rejections.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.metrics()
    }
}

/// Everything a completed submission carried, for callers that want more
/// than the [`RunReport`]: executor metrics, epoch stamps, queueing times.
#[derive(Clone, Debug)]
pub struct CompletedSubmission {
    /// The full shared-run result (report + wavefront metrics + epochs).
    pub run: SharedRun,
    /// Queueing/service/staleness stats for this submission.
    pub stats: TicketStats,
}

/// A pending single-pipeline submission (or retrieval).
///
/// Dropping the handle does **not** cancel the submission — it still
/// executes and commits into the shared history.
#[derive(Debug)]
pub struct SubmissionHandle {
    ticket: Arc<Ticket>,
}

impl SubmissionHandle {
    /// Block until the submission completes and return its report.
    pub fn wait(self) -> Result<RunReport, ServeError> {
        self.wait_completed().map(|c| c.run.report)
    }

    /// Block until the submission completes, returning the full result:
    /// report, wavefront metrics, epoch stamps, and queueing stats.
    pub fn wait_completed(self) -> Result<CompletedSubmission, ServeError> {
        match self.ticket.wait()? {
            Response::One(run) => Ok(CompletedSubmission { run, stats: self.ticket.stats() }),
            Response::Many(_) => unreachable!("single ticket resolved with a batch response"),
        }
    }

    /// Non-blocking poll: `None` while queued or running, the result once
    /// done. Can be called repeatedly.
    pub fn try_report(&self) -> Option<Result<RunReport, ServeError>> {
        self.ticket.try_result().map(|r| match r {
            Ok(Response::One(run)) => Ok(run.report),
            Ok(Response::Many(_)) => unreachable!("single ticket resolved with a batch response"),
            Err(e) => Err(e),
        })
    }

    /// Cancel if still queued. Returns `true` when the cancellation won —
    /// the submission will never execute and `wait` returns
    /// [`ServeError::Cancelled`]. Returns `false` once execution already
    /// started (or finished); the result stays available.
    pub fn cancel(&self) -> bool {
        self.ticket.cancel()
    }
}

/// A pending batch submission.
#[derive(Debug)]
pub struct BatchHandle {
    ticket: Arc<Ticket>,
}

impl BatchHandle {
    /// Block until the whole batch completes and return its report.
    pub fn wait(self) -> Result<BatchRunReport, ServeError> {
        self.wait_completed().map(|b| b.batch)
    }

    /// Block until the batch completes, returning the full result with
    /// epoch stamps.
    pub fn wait_completed(self) -> Result<SharedBatchRun, ServeError> {
        match self.ticket.wait()? {
            Response::Many(run) => Ok(run),
            Response::One(_) => unreachable!("batch ticket resolved with a single response"),
        }
    }

    /// Non-blocking poll for the batch report.
    pub fn try_report(&self) -> Option<Result<BatchRunReport, ServeError>> {
        self.ticket.try_result().map(|r| match r {
            Ok(Response::Many(run)) => Ok(run.batch),
            Ok(Response::One(_)) => unreachable!("batch ticket resolved with a single response"),
            Err(e) => Err(e),
        })
    }

    /// Cancel if still queued (see [`SubmissionHandle::cancel`]).
    pub fn cancel(&self) -> bool {
        self.ticket.cancel()
    }
}

impl Session for Client {
    fn backend_name(&self) -> &'static str {
        "HYPPO-serve"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        Client::register_dataset(self, id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<RunReport, SubmitError> {
        let handle = Client::submit(self, spec).map_err(SubmitError::from)?;
        handle.wait().map_err(SubmitError::from)
    }

    fn submit_batch(&mut self, specs: Vec<PipelineSpec>) -> Result<Vec<RunReport>, SubmitError> {
        let handle = Client::submit_batch(self, specs).map_err(SubmitError::from)?;
        handle.wait().map(|b| b.reports).map_err(SubmitError::from)
    }

    fn retrieve(&mut self, names: &[ArtifactName]) -> Result<RunReport, SubmitError> {
        let handle = Client::retrieve(self, names).map_err(SubmitError::from)?;
        handle.wait().map_err(SubmitError::from)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.shared.backend.cumulative_seconds()
    }

    fn budget_bytes(&self) -> u64 {
        self.shared.backend.config.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.shared.backend.snapshot().history.artifact_count()
    }
}
