//! Scripted multi-session batches over the actor runtime.
//!
//! The pre-serving runtime drove session lists with one OS thread per
//! session. That entry point now rides the actor runtime: every session
//! becomes a tenant [`Client`], its whole pipeline sequence is enqueued
//! into the tenant's FIFO mailbox (round-robin across sessions so all
//! tenants fill concurrently), and the worker pool interleaves them
//! against the shared epoch-snapshot backend. Per-session submission
//! order — and therefore per-session results — is identical to the old
//! thread-per-session driver; what changed is that N sessions no longer
//! cost N threads, and the outcome now carries the serving gauges
//! (queue depth, mailbox wait, epoch lag).
//!
//! [`ConcurrentSessions`] gives the serial [`Hyppo`] facade the same
//! entry point by moving its state into a temporary runtime and back.

use crate::client::Client;
use crate::runtime::{ServeConfig, ServeError, ServeRuntime};
use hyppo_core::system::{Hyppo, RunReport, SubmitError};
use hyppo_core::{ArtifactStore, CostEstimator, History};
use hyppo_pipeline::PipelineSpec;
use hyppo_runtime::{SharedHyppo, DEFAULT_SHARDS};
use std::sync::Arc;
use std::time::Instant;

/// What one scripted session produced.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Session index (position in the submitted batch).
    pub session: usize,
    /// Per-submission reports, in submission order.
    pub runs: Vec<RunReport>,
    /// Wall-clock seconds from batch start to this session's last
    /// completion.
    pub wall_seconds: f64,
    /// Summed per-task seconds across the session's plans.
    pub task_seconds: f64,
    /// Largest in-flight edge count any of the session's plans reached.
    pub peak_concurrency: usize,
    /// Summed seconds this session's submissions waited in its mailbox.
    pub mailbox_wait_seconds: f64,
    /// Worst snapshot-staleness ([`EpochStamp::lag`]) any of its
    /// submissions observed.
    ///
    /// [`EpochStamp::lag`]: hyppo_runtime::EpochStamp::lag
    pub epoch_lag_max: u64,
}

/// Aggregate metrics for one multi-session batch.
#[derive(Clone, Debug, Default)]
pub struct RuntimeMetrics {
    /// Sessions completed.
    pub sessions: usize,
    /// Hyperedges executed across all sessions.
    pub tasks_executed: usize,
    /// How many of them were loads (dataset or materialized artifact) —
    /// the cache hits of cross-session reuse.
    pub loads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Summed per-task seconds — what one thread replaying every task
    /// serially would accumulate.
    pub task_seconds: f64,
    /// Wall-clock seconds threads spent waiting on locks (store shards +
    /// the catalog cell) during the batch.
    pub lock_wait_seconds: f64,
    /// Largest in-flight edge count any plan reached.
    pub peak_concurrency: usize,
    /// Largest total mailbox depth the runtime reached during the batch.
    pub peak_queue_depth: usize,
    /// Summed seconds submissions spent queued in mailboxes.
    pub mailbox_wait_seconds: f64,
    /// Mean snapshot-staleness across the batch's submissions.
    pub epoch_lag_mean: f64,
    /// Worst snapshot-staleness observed.
    pub epoch_lag_max: u64,
}

impl RuntimeMetrics {
    /// Parallel speedup over a serial replay: summed task seconds divided
    /// by wall-clock seconds. ~1.0 on a single-core host.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.task_seconds / self.wall_seconds
        } else {
            1.0
        }
    }
}

/// One report per session plus the aggregates.
#[derive(Clone, Debug, Default)]
pub struct SessionsOutcome {
    /// One report per session, in input order.
    pub reports: Vec<SessionReport>,
    /// Aggregate metrics.
    pub metrics: RuntimeMetrics,
}

impl ServeRuntime {
    /// Run scripted sessions to completion: session `i`'s pipelines
    /// execute FIFO under tenant `i`'s actor, all sessions interleave on
    /// the worker pool against the shared epoch-snapshot state.
    pub fn run_sessions(
        &self,
        sessions: Vec<Vec<PipelineSpec>>,
    ) -> Result<SessionsOutcome, ServeError> {
        let lock_wait_before = self.backend().lock_wait_seconds();
        let start = Instant::now();

        // One tenant per session; fill mailboxes round-robin so every
        // tenant has work from the first scheduling decision on.
        let clients: Vec<Client> = sessions.iter().map(|_| self.client()).collect();
        let mut pending: Vec<std::collections::VecDeque<PipelineSpec>> =
            sessions.into_iter().map(|s| s.into()).collect();
        let mut handles: Vec<Vec<crate::SubmissionHandle>> =
            pending.iter().map(|_| Vec::new()).collect();
        loop {
            let mut enqueued_any = false;
            for (i, queue) in pending.iter_mut().enumerate() {
                if let Some(spec) = queue.pop_front() {
                    handles[i].push(clients[i].submit(spec)?);
                    enqueued_any = true;
                }
            }
            if !enqueued_any {
                break;
            }
        }

        let mut reports = Vec::with_capacity(handles.len());
        let mut first_error = None;
        let mut lag_sum = 0u64;
        for (session, session_handles) in handles.into_iter().enumerate() {
            let mut report = SessionReport { session, ..Default::default() };
            for handle in session_handles {
                match handle.wait_completed() {
                    Ok(completed) => {
                        report.task_seconds += completed.run.wave.task_seconds;
                        report.peak_concurrency =
                            report.peak_concurrency.max(completed.run.wave.peak_concurrency);
                        report.mailbox_wait_seconds += completed.stats.mailbox_wait_seconds;
                        lag_sum += completed.run.epochs.lag();
                        report.epoch_lag_max = report.epoch_lag_max.max(completed.run.epochs.lag());
                        report.runs.push(completed.run.report);
                    }
                    Err(e) => {
                        // Keep draining so every handle resolves before we
                        // report the failure — no submission left behind.
                        first_error.get_or_insert(e);
                    }
                }
            }
            report.wall_seconds = start.elapsed().as_secs_f64();
            reports.push(report);
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        let wall_seconds = start.elapsed().as_secs_f64();
        let serve = self.metrics();
        let lag_count: u64 = reports.iter().map(|r| r.runs.len() as u64).sum();
        let metrics = RuntimeMetrics {
            sessions: reports.len(),
            tasks_executed: reports
                .iter()
                .flat_map(|r| r.runs.iter())
                .map(|run| run.tasks_executed)
                .sum(),
            loads: reports.iter().flat_map(|r| r.runs.iter()).map(|run| run.loads).sum(),
            wall_seconds,
            task_seconds: reports.iter().map(|r| r.task_seconds).sum(),
            lock_wait_seconds: self.backend().lock_wait_seconds() - lock_wait_before,
            peak_concurrency: reports.iter().map(|r| r.peak_concurrency).max().unwrap_or(0),
            peak_queue_depth: serve.peak_queue_depth,
            mailbox_wait_seconds: reports.iter().map(|r| r.mailbox_wait_seconds).sum(),
            epoch_lag_mean: if lag_count == 0 { 0.0 } else { lag_sum as f64 / lag_count as f64 },
            epoch_lag_max: reports.iter().map(|r| r.epoch_lag_max).max().unwrap_or(0),
        };
        Ok(SessionsOutcome { reports, metrics })
    }
}

/// Convenience: run scripted sessions over a fresh actor runtime built
/// around `backend`, then hand the backend back.
///
/// This is the serving-layer form of the old free-standing
/// `SharedHyppo::run_sessions_concurrent` driver loop: `workers` actor
/// workers, `workers_per_plan` wavefront threads per plan, blocking
/// admission (scripted batches should never drop work).
pub fn run_sessions_concurrent(
    backend: SharedHyppo,
    sessions: Vec<Vec<PipelineSpec>>,
    workers_per_plan: usize,
) -> (Result<SessionsOutcome, ServeError>, Arc<SharedHyppo>) {
    let workers = sessions.len().clamp(1, 8);
    let runtime = ServeRuntime::new(
        backend,
        ServeConfig { workers, plan_workers: workers_per_plan.max(1), ..ServeConfig::default() },
    );
    let outcome = runtime.run_sessions(sessions);
    match runtime.shutdown() {
        Ok(backend) => (outcome, backend),
        Err(e) => unreachable!("shutdown without durability cannot fail: {e}"),
    }
}

/// Extension: run concurrent scripted sessions from the serial [`Hyppo`]
/// facade by temporarily moving its state into an actor runtime.
pub trait ConcurrentSessions {
    /// Run `sessions` concurrently, each plan on `workers_per_plan`
    /// wavefront workers.
    fn run_sessions_concurrent(
        &mut self,
        sessions: Vec<Vec<PipelineSpec>>,
        workers_per_plan: usize,
    ) -> Result<SessionsOutcome, SubmitError>;
}

impl ConcurrentSessions for Hyppo {
    fn run_sessions_concurrent(
        &mut self,
        sessions: Vec<Vec<PipelineSpec>>,
        workers_per_plan: usize,
    ) -> Result<SessionsOutcome, SubmitError> {
        let history = std::mem::replace(&mut self.history, History::new());
        let estimator = std::mem::replace(&mut self.estimator, CostEstimator::new());
        let store = std::mem::replace(&mut self.store, ArtifactStore::new());
        let shared =
            SharedHyppo::from_parts(self.config.clone(), history, estimator, store, DEFAULT_SHARDS);
        let (result, shared) = run_sessions_concurrent(shared, sessions, workers_per_plan);
        // State flows back whether the batch succeeded or not — completed
        // sessions' history must never be lost.
        let shared = Arc::try_unwrap(shared)
            .expect("runtime shut down and all clients dropped: sole Arc remains");
        let (history, estimator, store, executed_seconds) = shared.into_parts();
        self.history = history;
        self.estimator = estimator;
        self.store = store;
        self.cumulative_seconds += executed_seconds;
        let outcome = result.map_err(SubmitError::from)?;
        // The moved-back history carries any events the batch journaled
        // (the shared system had no hook of its own); drain them into the
        // serial facade's hook so the batch becomes durable too.
        self.flush_durability().map_err(SubmitError::Durability)?;
        Ok(outcome)
    }
}
