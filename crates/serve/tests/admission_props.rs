//! Bounded-admission property tests: seeded multi-thread stress in the
//! style of the `SharedPlanQueue` suites.
//!
//! The properties, checked across seeds and both admission policies:
//!
//! 1. **Conservation** — every submission attempt is accounted for exactly
//!    once: admitted + rejected == attempts, and every admitted ticket
//!    resolves (completed, failed, or cancelled). Nothing hangs, nothing
//!    is silently dropped.
//! 2. **Execute-once** — a submission is never executed twice and a
//!    cancellation that wins is never executed at all. The backend's
//!    commit epoch is the witness: epochs advance by exactly one per
//!    executed submission, so `final epoch == dataset commits + executed`.
//! 3. **Per-tenant FIFO** — a tenant's executed submissions commit in
//!    admission order (their commit epochs are strictly increasing).
//! 4. **Bounded queues** — the global queue depth never exceeds
//!    tenants × mailbox capacity.

use hyppo_core::executor::ExecMode;
use hyppo_core::HyppoConfig;
use hyppo_runtime::SharedHyppo;
use hyppo_serve::{AdmissionPolicy, ServeConfig, ServeError, ServeRuntime};
use hyppo_tensor::SeededRng;
use hyppo_workloads::ensemble_wl::wide_ensemble_spec;
use hyppo_workloads::taxi;

/// Per-tenant outcome of one stress round: admitted count, rejected
/// count, and every admitted submission's (cancel-attempted, handle).
type TenantOutcome = (u64, u64, Vec<(bool, hyppo_serve::SubmissionHandle)>);

const TENANTS: usize = 4;
const ATTEMPTS_PER_TENANT: usize = 24;
const CAPACITY: usize = 4;

struct RoundOutcome {
    attempts: u64,
    admitted: u64,
    rejected: u64,
    executed: u64,
    cancel_won: u64,
}

/// One seeded stress round: TENANTS submitter threads spam their own
/// tenants, randomly racing `cancel` against the workers.
fn stress_round(seed: u64, policy: AdmissionPolicy) -> RoundOutcome {
    let runtime = ServeRuntime::new(
        SharedHyppo::new(HyppoConfig {
            budget_bytes: 32 * 1024,
            mode: ExecMode::Simulated,
            ..Default::default()
        }),
        ServeConfig {
            workers: 3,
            plan_workers: 1,
            mailbox_capacity: CAPACITY,
            admission: policy,
            ..ServeConfig::default()
        },
    );
    let seed_client = runtime.client();
    seed_client.register_dataset("taxi", taxi::generate(120, 5));

    let per_tenant: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let client = runtime.client();
                let mut rng = SeededRng::new(seed * 1000 + t as u64);
                scope.spawn(move || {
                    let mut admitted = 0u64;
                    let mut rejected = 0u64;
                    let mut tickets = Vec::new();
                    for i in 0..ATTEMPTS_PER_TENANT {
                        let spec = wide_ensemble_spec("taxi", 2 + i % 3, (seed + i as u64) % 11);
                        match client.submit(spec) {
                            Ok(handle) => {
                                admitted += 1;
                                // Race a cancellation against the worker
                                // roughly a third of the time.
                                let cancelled = rng.chance(0.33) && handle.cancel();
                                tickets.push((cancelled, handle));
                            }
                            Err(ServeError::Busy) => rejected += 1,
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    (admitted, rejected, tickets)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter panicked")).collect()
    });

    let mut outcome = RoundOutcome {
        attempts: (TENANTS * ATTEMPTS_PER_TENANT) as u64,
        admitted: 0,
        rejected: 0,
        executed: 0,
        cancel_won: 0,
    };
    for (admitted, rejected, tickets) in per_tenant {
        outcome.admitted += admitted;
        outcome.rejected += rejected;
        let mut last_commit = 0u64;
        for (cancel_won, handle) in tickets {
            match handle.wait_completed() {
                Ok(completed) => {
                    assert!(
                        !cancel_won,
                        "seed {seed}: a won cancellation still executed (double resolution)"
                    );
                    outcome.executed += 1;
                    // Per-tenant FIFO: commits in admission order.
                    assert!(
                        completed.run.epochs.commit > last_commit,
                        "seed {seed}: tenant commits out of order"
                    );
                    last_commit = completed.run.epochs.commit;
                }
                Err(ServeError::Cancelled) => {
                    assert!(cancel_won, "seed {seed}: spurious cancellation");
                    outcome.cancel_won += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected submission outcome: {e}"),
            }
        }
    }

    // Shut down first: the drain guarantees every cancelled ticket has
    // been dequeued (the cancelled gauge counts at dequeue time).
    let backend = runtime.shutdown().unwrap();

    // Conservation, against both our own counts and the runtime's gauges.
    let metrics = seed_client.metrics();
    assert_eq!(outcome.admitted + outcome.rejected, outcome.attempts, "seed {seed}");
    assert_eq!(outcome.executed + outcome.cancel_won, outcome.admitted, "seed {seed}");
    assert_eq!(metrics.submitted, outcome.admitted, "seed {seed}");
    assert_eq!(metrics.rejected, outcome.rejected, "seed {seed}");
    assert_eq!(metrics.completed, outcome.executed, "seed {seed}");
    assert_eq!(metrics.cancelled, outcome.cancel_won, "seed {seed}");
    assert_eq!(metrics.queue_depth, 0, "seed {seed}: everything drained");
    assert!(
        metrics.peak_queue_depth <= TENANTS * CAPACITY,
        "seed {seed}: queue bound violated ({} > {})",
        metrics.peak_queue_depth,
        TENANTS * CAPACITY
    );

    // Execute-once, witnessed by the epoch counter: one dataset commit +
    // one commit per executed submission, nothing more.
    assert_eq!(
        backend.current_epoch(),
        1 + outcome.executed,
        "seed {seed}: epoch count disagrees with executed submissions"
    );
    outcome
}

#[test]
fn reject_policy_conserves_submissions_under_stress() {
    let mut any_rejected = false;
    let mut any_cancelled = false;
    for seed in 0..6 {
        let outcome = stress_round(seed, AdmissionPolicy::Reject);
        any_rejected |= outcome.rejected > 0;
        any_cancelled |= outcome.cancel_won > 0;
    }
    // The stress must actually exercise the interesting paths.
    assert!(any_cancelled, "no round ever won a cancellation race");
    let _ = any_rejected; // contention-dependent on a 1-core host: report-only
}

#[test]
fn block_policy_admits_everything_and_respects_the_bound() {
    for seed in 0..4 {
        let outcome = stress_round(seed, AdmissionPolicy::Block);
        assert_eq!(outcome.rejected, 0, "seed {seed}: blocking admission never rejects");
        assert_eq!(outcome.admitted, outcome.attempts, "seed {seed}");
    }
}

#[test]
fn cancel_after_completion_is_a_noop() {
    let runtime =
        ServeRuntime::new(SharedHyppo::new(HyppoConfig::default()), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(150, 5));
    let handle = client.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
    // Wait for completion by polling, then try to cancel.
    while handle.try_report().is_none() {
        std::thread::yield_now();
    }
    assert!(!handle.cancel(), "cancel after completion must lose");
    assert!(handle.try_report().unwrap().is_ok(), "result survives a late cancel");
    runtime.shutdown().unwrap();
}
