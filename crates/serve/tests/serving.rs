//! Serving-layer behavior: the Client API, scripted session batches over
//! the actor runtime, and the invariants the old thread-per-session
//! driver guaranteed (no deadlock, budget respected, state preserved on
//! failure, virtual clock in simulated mode).

use hyppo_core::executor::ExecMode;
use hyppo_core::{Hyppo, HyppoConfig, Session};
use hyppo_pipeline::PipelineSpec;
use hyppo_runtime::SharedHyppo;
use hyppo_serve::{
    run_sessions_concurrent, AdmissionPolicy, ConcurrentSessions, ServeConfig, ServeError,
    ServeRuntime,
};
use hyppo_workloads::ensemble_wl::wide_ensemble_spec;
use hyppo_workloads::taxi;
use std::sync::Arc;

fn config(budget: u64) -> HyppoConfig {
    HyppoConfig { budget_bytes: budget, ..Default::default() }
}

fn sessions(n: usize) -> Vec<Vec<PipelineSpec>> {
    // Sessions share members (seeds overlap), so cross-session reuse has
    // something to find.
    (0..n).map(|i| vec![wide_ensemble_spec("taxi", 3 + i % 2, 7 + i as u64 % 2)]).collect()
}

#[test]
fn client_submit_wait_roundtrip() {
    let runtime =
        ServeRuntime::new(SharedHyppo::new(config(64 * 1024 * 1024)), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(300, 5));

    let handle = client.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
    let completed = handle.wait_completed().unwrap();
    assert!(completed.run.report.tasks_executed > 0);
    assert!(completed.stats.latency_seconds >= completed.stats.service_seconds);
    assert_eq!(completed.run.epochs.lag(), 0, "single tenant sees no staleness");

    let metrics = client.metrics();
    assert_eq!(metrics.submitted, 1);
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.queue_depth, 0);
    assert!(metrics.latency_seconds > 0.0);
    runtime.shutdown().unwrap();
}

#[test]
fn try_report_polls_until_done() {
    let runtime = ServeRuntime::new(SharedHyppo::new(config(0)), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(200, 5));
    let handle = client.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
    // Poll until the actor finishes; the loop must terminate.
    let report = loop {
        if let Some(result) = handle.try_report() {
            break result.unwrap();
        }
        std::thread::yield_now();
    };
    assert!(report.tasks_executed > 0);
    runtime.shutdown().unwrap();
}

#[test]
fn batch_submission_through_the_client() {
    let runtime =
        ServeRuntime::new(SharedHyppo::new(config(64 * 1024 * 1024)), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(300, 5));
    let handle = client
        .submit_batch(vec![
            wide_ensemble_spec("taxi", 3, 7),
            wide_ensemble_spec("taxi", 4, 8),
            wide_ensemble_spec("taxi", 3, 7),
        ])
        .unwrap();
    let batch = handle.wait().unwrap();
    assert_eq!(batch.reports.len(), 3);
    assert_eq!(batch.batch.deduped, 1, "duplicate specs dedup in the joint plan");
    runtime.shutdown().unwrap();
}

#[test]
fn retrieve_through_the_client() {
    let runtime =
        ServeRuntime::new(SharedHyppo::new(config(64 * 1024 * 1024)), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(300, 5));
    client.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap().wait().unwrap();

    let names: Vec<_> = {
        let snap = runtime.backend().snapshot();
        let value_names: Vec<_> = snap
            .history
            .artifact_names()
            .filter(|&n| {
                let node = snap.history.node_of(n).unwrap();
                snap.history.graph.node(node).role == hyppo_pipeline::ArtifactRole::Value
            })
            .collect();
        value_names
    };
    assert!(!names.is_empty());
    let report = client.retrieve(&names).unwrap().wait().unwrap();
    assert_eq!(report.values.len(), names.len());
    runtime.shutdown().unwrap();
}

#[test]
fn client_implements_the_session_trait() {
    let runtime =
        ServeRuntime::new(SharedHyppo::new(config(64 * 1024 * 1024)), ServeConfig::default());
    let mut client = runtime.client();
    Session::register_dataset(&mut client, "taxi", taxi::generate(300, 5));
    let report = Session::submit(&mut client, wide_ensemble_spec("taxi", 3, 7)).unwrap();
    assert!(report.tasks_executed > 0);
    assert_eq!(client.backend_name(), "HYPPO-serve");
    assert!(client.cumulative_seconds() > 0.0);
    assert!(client.history_artifacts() > 0);
    runtime.shutdown().unwrap();
}

#[test]
fn unknown_dataset_surfaces_an_error_not_a_hang() {
    let runtime = ServeRuntime::new(SharedHyppo::new(config(0)), ServeConfig::default());
    let client = runtime.client();
    let err = client.submit(wide_ensemble_spec("nope", 2, 1)).unwrap().wait();
    assert!(
        matches!(err, Err(ServeError::NoPlan) | Err(ServeError::Exec(_))),
        "unexpected outcome: {err:?}"
    );
    runtime.shutdown().unwrap();
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let runtime = ServeRuntime::new(SharedHyppo::new(config(0)), ServeConfig::default());
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(100, 5));
    runtime.shutdown().unwrap();
    assert!(matches!(client.submit(wide_ensemble_spec("taxi", 2, 1)), Err(ServeError::ShutDown)));
}

#[test]
fn shutdown_drains_queued_submissions() {
    // One worker, several queued submissions: shutdown must complete them
    // all, not drop them.
    let runtime = ServeRuntime::new(
        SharedHyppo::new(HyppoConfig { mode: ExecMode::Simulated, ..config(0) }),
        ServeConfig { workers: 1, ..ServeConfig::default() },
    );
    let client = runtime.client();
    client.register_dataset("taxi", taxi::generate(200, 5));
    let handles: Vec<_> = (0..6)
        .map(|i| client.submit(wide_ensemble_spec("taxi", 2 + i % 3, i as u64)).unwrap())
        .collect();
    let backend = runtime.shutdown().unwrap();
    for handle in handles {
        handle.wait().unwrap();
    }
    assert_eq!(backend.current_epoch(), 7, "dataset + 6 submissions all committed");
}

#[test]
fn four_sessions_share_one_store_without_deadlock() {
    let shared = SharedHyppo::new(config(64 * 1024 * 1024));
    shared.register_dataset("taxi", taxi::generate(300, 5));
    let (outcome, shared) = run_sessions_concurrent(shared, sessions(4), 2);
    let outcome = outcome.unwrap();
    assert_eq!(outcome.metrics.sessions, 4);
    assert_eq!(outcome.reports.len(), 4);
    assert!(outcome.metrics.tasks_executed > 0);
    assert!(outcome.metrics.wall_seconds > 0.0);
    assert!(outcome.metrics.speedup() > 0.0);
    assert!(outcome.metrics.peak_queue_depth >= 1);

    // No lost materializations: every artifact the history believes is
    // materialized must actually be in the store.
    let shared = Arc::try_unwrap(shared).expect("runtime shut down");
    let (history, _, store, cumulative) = shared.into_parts();
    for name in history.materialized() {
        assert!(store.contains(name), "history says {name} is materialized; store disagrees");
    }
    assert!(cumulative > 0.0);
}

#[test]
fn budget_is_respected_under_concurrent_sessions() {
    let budget = 32 * 1024;
    let shared = SharedHyppo::new(config(budget));
    shared.register_dataset("taxi", taxi::generate(200, 5));
    let (outcome, shared) = run_sessions_concurrent(shared, sessions(4), 2);
    outcome.unwrap();
    let shared = Arc::try_unwrap(shared).expect("runtime shut down");
    let (_, _, store, _) = shared.into_parts();
    assert!(store.used_bytes() <= budget, "store uses {} > budget {budget}", store.used_bytes());
}

#[test]
fn concurrent_sessions_feed_later_serial_reuse() {
    let mut sys = Hyppo::new(config(64 * 1024 * 1024));
    sys.register_dataset("taxi", taxi::generate(300, 5));
    let outcome = sys.run_sessions_concurrent(sessions(4), 2).unwrap();
    assert_eq!(outcome.metrics.sessions, 4);
    // State moved back: the serial facade sees the concurrent history.
    assert!(sys.history.artifact_count() > 0);
    assert!(sys.cumulative_seconds > 0.0);
    // A serial resubmission of a session's pipeline now reuses
    // materialized artifacts.
    let report = sys.submit(wide_ensemble_spec("taxi", 3, 7)).unwrap();
    assert!(report.loads >= 1, "resubmission should load materialized artifacts");
}

#[test]
fn missing_dataset_fails_but_preserves_state() {
    let mut sys = Hyppo::new(config(0));
    sys.register_dataset("taxi", taxi::generate(100, 5));
    let batch =
        vec![vec![wide_ensemble_spec("taxi", 2, 1)], vec![wide_ensemble_spec("nope", 2, 1)]];
    let err = sys.run_sessions_concurrent(batch, 2);
    assert!(err.is_err());
    // The failed batch must not have wiped the moved-out state.
    assert!(sys.store.dataset("taxi").is_some());
}

#[test]
fn simulated_mode_runs_on_the_virtual_clock() {
    let shared = SharedHyppo::new(HyppoConfig { mode: ExecMode::Simulated, ..config(0) });
    shared.register_dataset("taxi", taxi::generate(100, 5));
    let (outcome, _) = run_sessions_concurrent(shared, sessions(2), 4);
    let outcome = outcome.unwrap();
    assert_eq!(outcome.metrics.sessions, 2);
    for report in &outcome.reports {
        assert!(report.runs.iter().all(|r| r.values.is_empty()));
        assert!(report.runs.iter().all(|r| r.execution_seconds > 0.0));
    }
}

#[test]
fn reject_policy_surfaces_busy_and_counts_it() {
    // Capacity 1 and zero workers: the first submission sits queued
    // forever, the second must be rejected deterministically.
    let runtime = ServeRuntime::new(
        SharedHyppo::new(HyppoConfig { mode: ExecMode::Simulated, ..config(0) }),
        ServeConfig {
            workers: 1,
            mailbox_capacity: 1,
            admission: AdmissionPolicy::Reject,
            ..ServeConfig::default()
        },
    );
    // Occupy the single worker with another tenant's submission, waiting
    // until the worker has dequeued it (queue drains, nothing completed).
    let blocker = runtime.client();
    blocker.register_dataset("taxi", taxi::generate(400, 5));
    let busy = blocker.submit(wide_ensemble_spec("taxi", 4, 0)).unwrap();
    while blocker.metrics().queue_depth > 0 {
        std::thread::yield_now();
    }

    let client = runtime.client();
    let first = client.submit(wide_ensemble_spec("taxi", 2, 1)).unwrap();
    let second = client.submit(wide_ensemble_spec("taxi", 2, 2));
    if let Err(e) = &second {
        assert_eq!(*e, ServeError::Busy);
        assert!(client.metrics().rejected >= 1);
    }
    // Whether or not the race let the second in, nothing already admitted
    // may be lost.
    busy.wait().unwrap();
    first.wait().unwrap();
    if let Ok(handle) = second {
        handle.wait().unwrap();
    }
    runtime.shutdown().unwrap();
}
