//! The serving determinism gate.
//!
//! Per-tenant results through the serving layer must be **bit-identical**
//! to replaying that tenant's sequence alone on a private planner view at
//! equal history epochs. The actor runtime, the mailbox scheduling, the
//! worker pool, and the epoch-snapshot plumbing may add *no*
//! nondeterminism: when the history epochs a submission plans against and
//! commits match, every report bit matches.
//!
//! 50+ seeds replay Xin-et-al edit-model sequences (the `crates/workloads`
//! generator, both use cases) in simulated mode; a smaller set runs real
//! execution and additionally compares computed artifact values bitwise.

use hyppo_core::executor::ExecMode;
use hyppo_core::HyppoConfig;
use hyppo_pipeline::PipelineSpec;
use hyppo_runtime::{SharedHyppo, SharedRun};
use hyppo_serve::{ServeConfig, ServeRuntime};
use hyppo_workloads::{generator::generate_sequence, higgs, taxi, SequenceConfig, UseCase};

fn config(mode: ExecMode) -> HyppoConfig {
    HyppoConfig { budget_bytes: 24 * 1024, mode, ..Default::default() }
}

fn sequence(seed: u64) -> (UseCase, Vec<PipelineSpec>) {
    let use_case = if seed.is_multiple_of(2) { UseCase::Taxi } else { UseCase::Higgs };
    let dataset_id = match use_case {
        UseCase::Taxi => "taxi",
        UseCase::Higgs => "higgs",
    };
    let templates = generate_sequence(&SequenceConfig {
        use_case,
        dataset_id: dataset_id.to_string(),
        n_pipelines: 4,
        seed,
    });
    (use_case, templates.iter().map(|t| t.to_spec()).collect())
}

fn register(backend: &SharedHyppo, use_case: UseCase, seed: u64) {
    match use_case {
        UseCase::Taxi => backend.register_dataset("taxi", taxi::generate(150, seed % 7)),
        UseCase::Higgs => backend.register_dataset("higgs", higgs::generate(150, seed % 7)),
    }
}

/// The tenant's sequence through the serving layer: single tenant over a
/// multi-worker actor runtime.
fn serve_replay(seed: u64, mode: ExecMode) -> Vec<SharedRun> {
    let (use_case, specs) = sequence(seed);
    let runtime = ServeRuntime::new(
        SharedHyppo::new(config(mode)),
        ServeConfig { workers: 4, plan_workers: 2, ..ServeConfig::default() },
    );
    let client = runtime.client();
    register(runtime.backend(), use_case, seed);
    let handles: Vec<_> = specs.into_iter().map(|s| client.submit(s).unwrap()).collect();
    let runs: Vec<SharedRun> =
        handles.into_iter().map(|h| h.wait_completed().unwrap().run).collect();
    runtime.shutdown().unwrap();
    runs
}

/// The same sequence alone on a private planner view (no serving layer).
fn isolated_replay(seed: u64, mode: ExecMode) -> Vec<SharedRun> {
    let (use_case, specs) = sequence(seed);
    let backend = SharedHyppo::new(config(mode));
    register(&backend, use_case, seed);
    specs.into_iter().map(|s| backend.submit_shared(s, 2).unwrap()).collect()
}

/// Simulated mode: the estimator's inputs are the virtual-clock costs, so
/// the entire report — plan cost bits, search counters, materialization
/// decisions — must match the isolated replay exactly.
fn assert_reports_bit_identical(seed: u64, served: &[SharedRun], isolated: &[SharedRun]) {
    assert_eq!(served.len(), isolated.len(), "seed {seed}");
    for (i, (s, r)) in served.iter().zip(isolated).enumerate() {
        assert_eq!(
            s.epochs, r.epochs,
            "seed {seed} submission {i}: history epochs diverged — the comparison \
             below would be vacuous"
        );
        assert_eq!(
            s.report.planned_cost.to_bits(),
            r.report.planned_cost.to_bits(),
            "seed {seed} submission {i}: planned cost bits diverged"
        );
        assert_eq!(s.report.tasks_executed, r.report.tasks_executed, "seed {seed} sub {i}");
        assert_eq!(s.report.loads, r.report.loads, "seed {seed} sub {i}");
        assert_eq!(s.report.new_tasks, r.report.new_tasks, "seed {seed} sub {i}");
        assert_eq!(s.report.expansions, r.report.expansions, "seed {seed} sub {i}");
        assert_eq!(s.report.pops, r.report.pops, "seed {seed} sub {i}");
        assert_eq!(s.report.stored, r.report.stored, "seed {seed} sub {i}");
        assert_eq!(s.report.evicted, r.report.evicted, "seed {seed} sub {i}");
    }
}

/// Real mode: the estimator learns from *measured* wall-clock timings, so
/// plan-search numbers legitimately drift between any two live runs (even
/// two isolated serial ones). What must still match bit for bit is the
/// data: every target's computed value — the paper's equivalence guarantee
/// — and the epoch stamps.
fn assert_values_bit_identical(seed: u64, served: &[SharedRun], isolated: &[SharedRun]) {
    assert_eq!(served.len(), isolated.len(), "seed {seed}");
    for (i, (s, r)) in served.iter().zip(isolated).enumerate() {
        assert_eq!(s.epochs, r.epochs, "seed {seed} submission {i}: history epochs diverged");
        assert_eq!(
            s.report.values.len(),
            r.report.values.len(),
            "seed {seed} sub {i}: target sets diverged"
        );
        assert!(!s.report.values.is_empty(), "seed {seed} sub {i}: no values to compare");
        for (name, value) in &s.report.values {
            let other = r.report.values.get(name).unwrap_or_else(|| {
                panic!("seed {seed} sub {i}: value artifact {name} missing from isolated run")
            });
            assert_eq!(
                value.to_bits(),
                other.to_bits(),
                "seed {seed} sub {i}: value bits diverged for {name}"
            );
        }
    }
}

#[test]
fn served_tenant_is_bit_identical_to_isolated_replay_across_seeds() {
    // 52 seeds × 4-step edit sequences, simulated execution: fast enough
    // to sweep broadly, and it exercises the full plan/commit path.
    for seed in 0..52 {
        let served = serve_replay(seed, ExecMode::Simulated);
        let isolated = isolated_replay(seed, ExecMode::Simulated);
        assert_reports_bit_identical(seed, &served, &isolated);
    }
}

#[test]
fn served_tenant_real_execution_matches_isolated_values_bitwise() {
    // Real execution: artifact values (model metrics) must also match bit
    // for bit, not just plans.
    for seed in [0u64, 1, 9, 20] {
        let served = serve_replay(seed, ExecMode::Real);
        let isolated = isolated_replay(seed, ExecMode::Real);
        assert_values_bit_identical(seed, &served, &isolated);
    }
}
