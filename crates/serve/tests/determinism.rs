//! The serving determinism gate.
//!
//! Per-tenant results through the serving layer must be **bit-identical**
//! to replaying that tenant's sequence alone on a private planner view at
//! equal history epochs. The actor runtime, the mailbox scheduling, the
//! worker pool, and the epoch-snapshot plumbing may add *no*
//! nondeterminism: when the history epochs a submission plans against and
//! commits match, every schedule-independent report field matches — with
//! serial plan search, every report bit outright (search-effort counters
//! included); with K > 1 plan workers, everything except `expansions`/
//! `pops`, which are aggregates over a race and contractually
//! nondeterministic at K > 1 (DESIGN.md §9).
//!
//! 50+ seeds replay Xin-et-al edit-model sequences (the `crates/workloads`
//! generator, both use cases) in simulated mode; a smaller set runs real
//! execution and additionally compares computed artifact values bitwise.

use hyppo_core::executor::ExecMode;
use hyppo_core::optimizer::Planner;
use hyppo_core::HyppoConfig;
use hyppo_pipeline::PipelineSpec;
use hyppo_runtime::{SharedHyppo, SharedRun};
use hyppo_serve::{ServeConfig, ServeRuntime};
use hyppo_workloads::{generator::generate_sequence, higgs, taxi, SequenceConfig, UseCase};

/// `search_threads` pins the plan-search thread count explicitly — the
/// default planner reads `HYPPO_PLANNER_THREADS`, and whether search
/// counters can be compared bitwise depends on this being exactly 1.
fn config(mode: ExecMode, search_threads: usize) -> HyppoConfig {
    HyppoConfig {
        budget_bytes: 24 * 1024,
        mode,
        search: Planner::exact().threads(search_threads),
        ..Default::default()
    }
}

fn sequence(seed: u64) -> (UseCase, Vec<PipelineSpec>) {
    let use_case = if seed.is_multiple_of(2) { UseCase::Taxi } else { UseCase::Higgs };
    let dataset_id = match use_case {
        UseCase::Taxi => "taxi",
        UseCase::Higgs => "higgs",
    };
    let templates = generate_sequence(&SequenceConfig {
        use_case,
        dataset_id: dataset_id.to_string(),
        n_pipelines: 4,
        seed,
    });
    (use_case, templates.iter().map(|t| t.to_spec()).collect())
}

fn register(backend: &SharedHyppo, use_case: UseCase, seed: u64) {
    match use_case {
        UseCase::Taxi => backend.register_dataset("taxi", taxi::generate(150, seed % 7)),
        UseCase::Higgs => backend.register_dataset("higgs", higgs::generate(150, seed % 7)),
    }
}

/// The tenant's sequence through the serving layer: single tenant over a
/// multi-worker actor runtime.
fn serve_replay(seed: u64, mode: ExecMode, search_threads: usize) -> Vec<SharedRun> {
    let (use_case, specs) = sequence(seed);
    let runtime = ServeRuntime::new(
        SharedHyppo::new(config(mode, search_threads)),
        ServeConfig { workers: 4, plan_workers: 2, ..ServeConfig::default() },
    );
    let client = runtime.client();
    register(runtime.backend(), use_case, seed);
    let handles: Vec<_> = specs.into_iter().map(|s| client.submit(s).unwrap()).collect();
    let runs: Vec<SharedRun> =
        handles.into_iter().map(|h| h.wait_completed().unwrap().run).collect();
    runtime.shutdown().unwrap();
    runs
}

/// The same sequence alone on a private planner view (no serving layer).
fn isolated_replay(seed: u64, mode: ExecMode, search_threads: usize) -> Vec<SharedRun> {
    let (use_case, specs) = sequence(seed);
    let backend = SharedHyppo::new(config(mode, search_threads));
    register(&backend, use_case, seed);
    specs.into_iter().map(|s| backend.submit_shared(s, 2).unwrap()).collect()
}

/// Simulated mode: the estimator's inputs are the virtual-clock costs, so
/// everything derived from the plan — cost bits, task/load/materialization
/// counts — must match the isolated replay exactly. With
/// `search_counters`, `expansions`/`pops` are compared too: valid only when
/// both replays searched serially, because search-effort counters are
/// aggregates over a race and legitimately vary at K > 1 search threads
/// (DESIGN.md §9 — under the old central-lock frontier the lock convoy made
/// them *accidentally* stable on this container; work-stealing deques make
/// the documented nondeterminism observable).
fn assert_reports_bit_identical(
    seed: u64,
    served: &[SharedRun],
    isolated: &[SharedRun],
    search_counters: bool,
) {
    assert_eq!(served.len(), isolated.len(), "seed {seed}");
    for (i, (s, r)) in served.iter().zip(isolated).enumerate() {
        assert_eq!(
            s.epochs, r.epochs,
            "seed {seed} submission {i}: history epochs diverged — the comparison \
             below would be vacuous"
        );
        assert_eq!(
            s.report.planned_cost.to_bits(),
            r.report.planned_cost.to_bits(),
            "seed {seed} submission {i}: planned cost bits diverged"
        );
        assert_eq!(s.report.tasks_executed, r.report.tasks_executed, "seed {seed} sub {i}");
        assert_eq!(s.report.loads, r.report.loads, "seed {seed} sub {i}");
        assert_eq!(s.report.new_tasks, r.report.new_tasks, "seed {seed} sub {i}");
        if search_counters {
            assert_eq!(s.report.expansions, r.report.expansions, "seed {seed} sub {i}");
            assert_eq!(s.report.pops, r.report.pops, "seed {seed} sub {i}");
        }
        assert_eq!(s.report.stored, r.report.stored, "seed {seed} sub {i}");
        assert_eq!(s.report.evicted, r.report.evicted, "seed {seed} sub {i}");
    }
}

/// Real mode: the estimator learns from *measured* wall-clock timings, so
/// plan-search numbers legitimately drift between any two live runs (even
/// two isolated serial ones). What must still match bit for bit is the
/// data: every target's computed value — the paper's equivalence guarantee
/// — and the epoch stamps.
fn assert_values_bit_identical(seed: u64, served: &[SharedRun], isolated: &[SharedRun]) {
    assert_eq!(served.len(), isolated.len(), "seed {seed}");
    for (i, (s, r)) in served.iter().zip(isolated).enumerate() {
        assert_eq!(s.epochs, r.epochs, "seed {seed} submission {i}: history epochs diverged");
        assert_eq!(
            s.report.values.len(),
            r.report.values.len(),
            "seed {seed} sub {i}: target sets diverged"
        );
        assert!(!s.report.values.is_empty(), "seed {seed} sub {i}: no values to compare");
        for (name, value) in &s.report.values {
            let other = r.report.values.get(name).unwrap_or_else(|| {
                panic!("seed {seed} sub {i}: value artifact {name} missing from isolated run")
            });
            assert_eq!(
                value.to_bits(),
                other.to_bits(),
                "seed {seed} sub {i}: value bits diverged for {name}"
            );
        }
    }
}

#[test]
fn served_tenant_is_bit_identical_to_isolated_replay_across_seeds() {
    // 52 seeds × 4-step edit sequences, simulated execution: fast enough
    // to sweep broadly, and it exercises the full plan/commit path. Serial
    // plan search on both sides, so *every* report field — search-effort
    // counters included — is asserted bit for bit.
    for seed in 0..52 {
        let served = serve_replay(seed, ExecMode::Simulated, 1);
        let isolated = isolated_replay(seed, ExecMode::Simulated, 1);
        assert_reports_bit_identical(seed, &served, &isolated, true);
    }
}

#[test]
fn served_tenant_with_parallel_search_matches_isolated_replay() {
    // K = 2 search threads on both sides: the parallel search interleaves
    // with the serving layer's own worker pool, and every plan-derived
    // field still matches the isolated replay — only the search-effort
    // counters (`expansions`/`pops`) are excluded, as contractually
    // schedule-dependent at K > 1 (DESIGN.md §9).
    for seed in 0..20 {
        let served = serve_replay(seed, ExecMode::Simulated, 2);
        let isolated = isolated_replay(seed, ExecMode::Simulated, 2);
        assert_reports_bit_identical(seed, &served, &isolated, false);
    }
}

#[test]
fn served_tenant_real_execution_matches_isolated_values_bitwise() {
    // Real execution: artifact values (model metrics) must also match bit
    // for bit, not just plans.
    for seed in [0u64, 1, 9, 20] {
        let served = serve_replay(seed, ExecMode::Real, 2);
        let isolated = isolated_replay(seed, ExecMode::Real, 2);
        assert_values_bit_identical(seed, &served, &isolated);
    }
}
