//! `hyppo-sched` — the one work-stealing scheduler behind HYPPO's three
//! concurrent subsystems: the parallel A* plan search (`hyppo-core`), the
//! wavefront plan executor (`hyppo-runtime`), and the multi-tenant serving
//! actors (`hyppo-serve`).
//!
//! # Shape
//!
//! Work items of type `T` flow through two tiers:
//!
//! * **Per-worker deques** ([Chase–Lev](crate::Scheduler)-style, fixed
//!   capacity): the owner pushes and pops at the bottom — LIFO, lock-free,
//!   cache-hot — while idle workers *steal batches* (up to half) from the
//!   top via a single CAS. This is the hot path; no lock is touched.
//! * **A global injector** (`Mutex<VecDeque>`): the cold path. External
//!   threads [`inject`](Scheduler::inject) here, and a worker whose deque
//!   is full *spills* overflow here instead of growing the ring.
//!
//! An idle worker scans in order: own deque → injector → steal from each
//! sibling round-robin. Only when a full scan comes up empty does it park
//! on a condvar, guarded by a generation counter so a wakeup can never be
//! lost between the failed scan and the sleep.
//!
//! # Two termination disciplines
//!
//! * **Drain mode** ([`Worker::next`] / [`Worker::next_batch`]): for
//!   finite self-expanding workloads (the A* search tree). The scheduler
//!   counts *outstanding* items — queued plus claimed-but-not-retired — and
//!   `next` returns `None` exactly when that count hits zero, which is a
//!   stable property: items are only created by processing other items.
//!   The claim/publish protocol of the old `SharedPlanQueue` is preserved
//!   implicitly: a claimed batch is retired at the worker's *next* call,
//!   after any children it spawned were already counted.
//! * **Service mode** ([`Worker::next_step`] / [`Worker::park`]): for
//!   long-lived pools (executor waves, serve actors) where an empty moment
//!   does not mean "done". `next_step` returns [`Step::Idle`] with a
//!   generation token; the caller may do idle work (flush durability,
//!   check drain conditions) and then `park` on the token, waking on new
//!   work or [`Scheduler::shutdown`].
//!
//! # Spawn/drain in five lines
//!
//! ```
//! use hyppo_sched::Scheduler;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Count down from 10: each task spawns its predecessor, so work
//! // migrates across workers through deque pushes, steals, and spills.
//! let sched: Scheduler<u64> = Scheduler::new(2);
//! sched.inject(10);
//! let sum = AtomicU64::new(0);
//! sched.run_scoped(|mut worker| {
//!     while let Some(n) = worker.next() {
//!         if n > 1 {
//!             worker.spawn(n - 1);
//!         }
//!         sum.fetch_add(n, Ordering::SeqCst);
//!     }
//! });
//! assert_eq!(sum.load(Ordering::SeqCst), 55);
//! ```
//!
//! # Determinism
//!
//! The scheduler makes **no ordering promises** beyond per-deque LIFO and
//! injector FIFO; consumers that need deterministic *results* must be
//! correct under arbitrary interleavings. All three HYPPO consumers are —
//! the A* search prunes by monotone bounds and reduces through a canonical
//! `(cost, sorted-lex edge-set)` incumbent, the executor assigns each
//! artifact a serial-order designated producer, and serve keys every
//! tenant turn off a per-tenant epoch — see DESIGN.md §16 for the full
//! argument.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod deque;

use deque::Deque;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Environment variable overriding the per-worker deque capacity used by
/// [`Scheduler::new`]. Tiny values (the minimum is 2) force constant
/// spills and steals, which is how the determinism stress suite exercises
/// steal-heavy schedules on a small machine.
pub const SCHED_CAPACITY_ENV: &str = "HYPPO_SCHED_CAPACITY";

/// Default per-worker deque capacity when [`SCHED_CAPACITY_ENV`] is unset.
pub const DEFAULT_DEQUE_CAPACITY: usize = 256;

/// What [`Worker::next_step`] observed (service mode).
#[derive(Debug)]
pub enum Step<T> {
    /// A claimed work item; it is retired at the worker's next call.
    Task(T),
    /// A full scan (own deque, injector, every sibling) found nothing.
    /// The token parks the worker race-free via [`Worker::park`].
    Idle(IdleToken),
    /// [`Scheduler::shutdown`] was called; the worker should exit.
    Shutdown,
}

/// Proof of an empty scan, capturing the scheduler generation observed
/// *before* the scan. [`Worker::park`] sleeps only while the generation is
/// unchanged, so work published between the scan and the sleep — which
/// bumps the generation — makes the park return immediately instead of
/// losing the wakeup.
#[derive(Debug, Clone, Copy)]
pub struct IdleToken {
    generation: u64,
}

/// Monotonic counters describing scheduler traffic, snapshot via
/// [`Scheduler::stats`]. All values are lifetime totals across workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Items entered via [`Worker::spawn`].
    pub spawned: u64,
    /// Items entered via [`Scheduler::inject`]/[`Scheduler::inject_batch`].
    pub injected: u64,
    /// Items retired (claimed and then completed by a worker).
    pub completed: u64,
    /// Items claimed from a worker's own deque (the lock-free hot path).
    pub local_pops: u64,
    /// Items claimed from the global injector.
    pub injector_claims: u64,
    /// Items obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Successful steal operations (each moves ≥ 1 item).
    pub steal_batches: u64,
    /// Full scans (own deque + injector + all siblings) that found nothing.
    pub empty_scans: u64,
    /// Spawns that overflowed a full deque into the injector.
    pub spills: u64,
    /// Times a worker parked on the condvar.
    pub parks: u64,
}

#[derive(Default)]
struct Counters {
    spawned: AtomicU64,
    injected: AtomicU64,
    completed: AtomicU64,
    local_pops: AtomicU64,
    injector_claims: AtomicU64,
    steals: AtomicU64,
    steal_batches: AtomicU64,
    empty_scans: AtomicU64,
    spills: AtomicU64,
    parks: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64, n: u64) {
        // hyppo-lint: allow(relaxed-ordering-justified) monotonic stats counter; readers only need an eventual total
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn read(counter: &AtomicU64) -> u64 {
        // hyppo-lint: allow(relaxed-ordering-justified) advisory stats snapshot; no synchronization decisions hang off it
        counter.load(Ordering::Relaxed)
    }
}

/// Work-stealing scheduler: per-worker Chase–Lev deques plus a global
/// injector, with drain-mode and service-mode termination (see crate
/// docs). `Scheduler<T>` is `Sync` for `T: Send`; share it by reference
/// ([`run_scoped`](Self::run_scoped)) or `Arc`
/// ([`spawn_pool`](Self::spawn_pool)).
pub struct Scheduler<T> {
    deques: Vec<Deque<T>>,
    /// One flag per worker slot: a [`Worker`] handle is exclusive.
    handles: Vec<AtomicBool>,
    injector: Mutex<VecDeque<T>>,
    /// Queued + claimed-but-unretired items. Zero is stable (drain mode).
    outstanding: AtomicUsize,
    shutdown: AtomicBool,
    /// Bumped (SeqCst) on every publish/shutdown/zero-transition; parking
    /// re-checks it under the sleep lock so wakeups cannot be lost.
    generation: AtomicU64,
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    stats: Counters,
}

impl<T> std::fmt::Debug for Scheduler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.deques.len())
            .field("outstanding", &self.outstanding())
            .field("shutdown", &self.is_shutdown())
            .finish()
    }
}

impl<T> Scheduler<T> {
    /// Scheduler with `workers` worker slots and the default deque
    /// capacity, overridable via [`SCHED_CAPACITY_ENV`].
    pub fn new(workers: usize) -> Self {
        let capacity = std::env::var(SCHED_CAPACITY_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_DEQUE_CAPACITY);
        Self::with_capacity(workers, capacity)
    }

    /// Scheduler with an explicit per-worker deque capacity (rounded up to
    /// a power of two, minimum 2). The environment override is ignored.
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        Scheduler {
            deques: (0..workers).map(|_| Deque::new(capacity)).collect(),
            handles: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            injector: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            stats: Counters::default(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Queued plus claimed-but-unretired items (racy snapshot; exact only
    /// at quiescence). In drain mode, zero means the workload is finished.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Whether [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            spawned: Counters::read(&self.stats.spawned),
            injected: Counters::read(&self.stats.injected),
            completed: Counters::read(&self.stats.completed),
            local_pops: Counters::read(&self.stats.local_pops),
            injector_claims: Counters::read(&self.stats.injector_claims),
            steals: Counters::read(&self.stats.steals),
            steal_batches: Counters::read(&self.stats.steal_batches),
            empty_scans: Counters::read(&self.stats.empty_scans),
            spills: Counters::read(&self.stats.spills),
            parks: Counters::read(&self.stats.parks),
        }
    }

    /// Push one item through the global injector (the cold path, for
    /// threads without a [`Worker`] handle) and wake a parked worker.
    pub fn inject(&self, item: T) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.injector.lock().unwrap().push_back(item);
        Counters::bump(&self.stats.injected, 1);
        self.signal();
    }

    /// Push a batch through the injector under one lock acquisition.
    /// Returns how many items were injected.
    pub fn inject_batch(&self, items: impl IntoIterator<Item = T>) -> usize {
        let staged: Vec<T> = items.into_iter().collect();
        let n = staged.len();
        if n == 0 {
            return 0;
        }
        self.outstanding.fetch_add(n, Ordering::SeqCst);
        self.injector.lock().unwrap().extend(staged);
        Counters::bump(&self.stats.injected, n as u64);
        self.signal();
        n
    }

    /// Tell every worker to exit: parked workers wake into
    /// [`Step::Shutdown`] / `next() == None`, and no further items are
    /// claimed (items still queued are dropped with the scheduler).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.signal();
    }

    /// Wake every parked worker for a fresh scan without publishing work —
    /// for consumers whose idle-exit condition lives outside the scheduler
    /// (e.g. serve's "shutdown requested and no turn in flight").
    pub fn wake_all(&self) {
        self.signal();
    }

    /// Claim worker slot `index` (0-based). Panics if out of range or if
    /// the slot already has a live [`Worker`] — a slot's deque has exactly
    /// one owner at a time. The handle is released on drop.
    pub fn worker(&self, index: usize) -> Worker<'_, T> {
        assert!(index < self.deques.len(), "worker index {index} out of range");
        assert!(
            !self.handles[index].swap(true, Ordering::SeqCst),
            "worker slot {index} is already claimed"
        );
        Worker { sched: self, index, in_flight: 0, scratch: Vec::new(), _not_sync: PhantomData }
    }

    /// Run one scoped thread per worker slot in **drain mode**: each
    /// thread gets its [`Worker`] and `worker_fn` is expected to loop on
    /// [`Worker::next`]/[`next_batch`](Worker::next_batch) until it
    /// returns `None`/`0` (workload drained or shutdown). Blocks until all
    /// workers exit. Seed work with [`inject`](Self::inject) first.
    pub fn run_scoped<F>(&self, worker_fn: F)
    where
        T: Send,
        F: for<'w> Fn(Worker<'w, T>) + Sync,
    {
        std::thread::scope(|scope| {
            for i in 0..self.deques.len() {
                let f = &worker_fn;
                scope.spawn(move || f(self.worker(i)));
            }
        });
    }

    /// Run worker threads in **service mode** with a driver on the calling
    /// thread: spawns one scoped thread per slot running `worker_fn`
    /// (expected to loop on [`Worker::next_step`] until [`Step::Shutdown`]),
    /// runs `driver`, then calls [`shutdown`](Self::shutdown) — also on
    /// unwind, so a panicking driver cannot deadlock the join — and waits
    /// for the workers.
    pub fn run_with_driver<D, R, F>(&self, driver: D, worker_fn: F) -> R
    where
        T: Send,
        D: FnOnce() -> R,
        F: for<'w> Fn(Worker<'w, T>) + Sync,
    {
        std::thread::scope(|scope| {
            for i in 0..self.deques.len() {
                let f = &worker_fn;
                scope.spawn(move || f(self.worker(i)));
            }
            let _stop = ShutdownOnDrop(self);
            driver()
        })
    }

    fn signal(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Take the sleep lock so the notify cannot slip into the gap
            // between a sleeper's generation re-check and its wait.
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_all();
        }
    }

    /// Retire `n` claimed items; on the transition to zero outstanding,
    /// wake everyone so drain-mode workers can observe termination.
    fn complete(&self, n: usize) {
        Counters::bump(&self.stats.completed, n as u64);
        if self.outstanding.fetch_sub(n, Ordering::SeqCst) == n {
            self.signal();
        }
    }

    /// Sleep until the generation moves past `g0` or shutdown. `g0` must
    /// have been read *before* the scan that came up empty: any publish
    /// after that read bumps the generation, so the wait predicate is
    /// already false and we return without sleeping.
    fn park_until(&self, g0: u64) {
        Counters::bump(&self.stats.parks, 1);
        let mut guard = self.sleep.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while self.generation.load(Ordering::SeqCst) == g0 && !self.shutdown.load(Ordering::SeqCst)
        {
            guard = self.wake.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T: Send + 'static> Scheduler<T> {
    /// Spawn one **owned, named OS thread** per worker slot — for
    /// long-lived pools that outlive the caller's stack frame (serve's
    /// actor workers). Threads are named `{name}-{index}`. This is the one
    /// place in the workspace allowed to create detached service threads;
    /// everything else goes through the scoped runners (enforced by the
    /// `thread-spawn-outside-sched` lint rule).
    pub fn spawn_pool<F>(
        self: &Arc<Self>,
        name: &str,
        worker_fn: F,
    ) -> Vec<std::thread::JoinHandle<()>>
    where
        F: for<'w> Fn(Worker<'w, T>) + Send + Sync + 'static,
    {
        let worker_fn = Arc::new(worker_fn);
        (0..self.deques.len())
            .map(|i| {
                let sched = Arc::clone(self);
                let f = Arc::clone(&worker_fn);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || f(sched.worker(i)))
                    .expect("failed to spawn scheduler worker thread")
            })
            .collect()
    }
}

/// Calls [`Scheduler::shutdown`] on drop (normal return *and* unwind).
struct ShutdownOnDrop<'s, T>(&'s Scheduler<T>);

impl<T> Drop for ShutdownOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Exclusive handle to one worker slot: the only owner of that slot's
/// deque. Obtained from [`Scheduler::worker`] (or the scoped runners) and
/// released on drop. Deliberately `!Send`/`!Sync` — the deque's owner
/// operations are single-threaded by construction.
pub struct Worker<'s, T> {
    sched: &'s Scheduler<T>,
    index: usize,
    /// Items claimed by the last `next*` call, retired at the next call.
    in_flight: usize,
    scratch: Vec<T>,
    _not_sync: PhantomData<*const ()>,
}

impl<T> std::fmt::Debug for Worker<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("index", &self.index)
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl<T> Worker<'_, T> {
    /// This worker's slot index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The scheduler this worker belongs to.
    pub fn scheduler(&self) -> &Scheduler<T> {
        self.sched
    }

    /// Publish a new item: pushed onto this worker's own deque (lock-free
    /// hot path) or spilled to the injector when the ring is full. Spawn
    /// children **before** the next `next*` call and the claim/publish
    /// invariant holds: the parent is only retired after its children are
    /// already counted, so the outstanding count can never dip to zero
    /// while work remains.
    pub fn spawn(&mut self, item: T) {
        self.sched.outstanding.fetch_add(1, Ordering::SeqCst);
        Counters::bump(&self.sched.stats.spawned, 1);
        if let Err(item) = self.sched.deques[self.index].push(item) {
            Counters::bump(&self.sched.stats.spills, 1);
            self.sched.injector.lock().unwrap().push_back(item);
        }
        self.sched.signal();
    }

    /// Drain mode: claim the next item, parking while siblings still hold
    /// work in flight. Returns `None` when the workload is finished
    /// (outstanding hit zero) or the scheduler was shut down. Retires the
    /// previous claim first.
    ///
    /// Not an [`Iterator`]: claiming blocks on in-flight siblings and
    /// retires the previous claim, so the `&mut self` method keeps those
    /// semantics explicit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<T> {
        let mut buf = std::mem::take(&mut self.scratch);
        let n = self.next_batch(&mut buf, 1);
        let item = if n > 0 { buf.pop() } else { None };
        self.scratch = buf;
        item
    }

    /// Drain mode, batched: claim up to `max` items into `out` (cleared
    /// first), blocking like [`next`](Self::next). Returns the claim count;
    /// `0` means finished or shut down. Retires the previous claim first.
    pub fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let max = max.max(1);
        self.retire();
        loop {
            let g0 = self.sched.generation.load(Ordering::SeqCst);
            if self.sched.shutdown.load(Ordering::SeqCst) {
                return 0;
            }
            let n = self.try_claim(out, max);
            if n > 0 {
                self.in_flight = n;
                return n;
            }
            if self.sched.outstanding.load(Ordering::SeqCst) == 0 {
                return 0;
            }
            self.sched.park_until(g0);
        }
    }

    /// Service mode: claim one item, or report [`Step::Idle`] after a full
    /// empty scan (the caller decides whether to [`park`](Self::park) or do
    /// idle work), or [`Step::Shutdown`]. Never blocks. Retires the
    /// previous claim first.
    pub fn next_step(&mut self) -> Step<T> {
        self.retire();
        let g0 = self.sched.generation.load(Ordering::SeqCst);
        if self.sched.shutdown.load(Ordering::SeqCst) {
            return Step::Shutdown;
        }
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        let n = self.try_claim(&mut buf, 1);
        let item = if n > 0 { buf.pop() } else { None };
        self.scratch = buf;
        match item {
            Some(t) => {
                self.in_flight = 1;
                Step::Task(t)
            }
            None => Step::Idle(IdleToken { generation: g0 }),
        }
    }

    /// Sleep until work is published or the scheduler shuts down. The
    /// token must come from the [`Step::Idle`] whose scan failed; work
    /// published since then returns immediately (see [`IdleToken`]).
    pub fn park(&mut self, token: IdleToken) {
        self.sched.park_until(token.generation);
    }

    /// One scan: own deque first, then the injector, then steal from each
    /// sibling round-robin. Returns how many items were claimed into `out`.
    fn try_claim(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let sched = self.sched;
        let own = &sched.deques[self.index];
        while out.len() < max {
            match own.pop() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if !out.is_empty() {
            Counters::bump(&sched.stats.local_pops, out.len() as u64);
            return out.len();
        }
        {
            let mut inj = sched.injector.lock().unwrap();
            for _ in 0..max {
                match inj.pop_front() {
                    Some(t) => out.push(t),
                    None => break,
                }
            }
        }
        if !out.is_empty() {
            Counters::bump(&sched.stats.injector_claims, out.len() as u64);
            return out.len();
        }
        let workers = sched.deques.len();
        for k in 1..workers {
            let victim = (self.index + k) % workers;
            let n = sched.deques[victim].steal_into(out, max);
            if n > 0 {
                Counters::bump(&sched.stats.steals, n as u64);
                Counters::bump(&sched.stats.steal_batches, 1);
                return n;
            }
        }
        Counters::bump(&sched.stats.empty_scans, 1);
        0
    }

    /// Retire the previous claim; on the zero transition the scheduler
    /// wakes everyone so termination is observed.
    fn retire(&mut self) {
        if self.in_flight > 0 {
            let n = self.in_flight;
            self.in_flight = 0;
            self.sched.complete(n);
        }
    }
}

impl<T> Drop for Worker<'_, T> {
    fn drop(&mut self) {
        // Settle the claim even on a panicking worker so siblings don't
        // wait forever on items that will never be retired, then release
        // the slot.
        self.retire();
        self.sched.handles[self.index].store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests;
