//! Scheduler-level tests: the two stress tests that guarded the old
//! `SharedPlanQueue` (shutdown-while-waiting, exact-tree-drain) re-stated
//! over the work-stealing scheduler, plus empty-steal and spill
//! regressions.

use super::*;
use std::sync::atomic::{AtomicUsize, Ordering as O};

/// Eight workers, one seed, no children: seven workers park with nothing
/// to do while the eighth holds the seed. When the claim is retired the
/// outstanding count hits zero and every sleeper must wake and exit via
/// `next() == None` — the shutdown-while-waiting path. The brief hold
/// gives the other workers time to actually reach the park.
#[test]
fn drain_termination_wakes_all_waiting_workers() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(8, 64);
    sched.inject(7);
    let processed = AtomicUsize::new(0);
    sched.run_scoped(|mut w| {
        while let Some(_item) = w.next() {
            processed.fetch_add(1, O::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    });
    assert_eq!(processed.load(O::SeqCst), 1);
    assert_eq!(sched.outstanding(), 0);
}

/// Deterministic synthetic workload mirroring the old
/// `shared_queue_drains_exact_tree_under_contention`: each item is a
/// remaining depth; depth > 0 spawns `fanout` children at depth − 1.
/// Whatever the steal schedule, batching, or deque capacity, 8 workers
/// must process exactly `Σ fanout^k for k in 0..=depth` items — dropping a
/// wakeup would hang the drain, and double-claiming or losing a spawn
/// would skew the count. Capacity 2 forces the spill + steal paths hard.
#[test]
fn drains_exact_tree_under_contention() {
    for (fanout, depth) in [(2u64, 10u32), (3, 7), (5, 4)] {
        let expected: u64 = (0..=depth).map(|k| fanout.pow(k)).sum();
        for capacity in [2usize, 64] {
            let sched: Scheduler<u32> = Scheduler::with_capacity(8, capacity);
            sched.inject(depth);
            let processed = AtomicUsize::new(0);
            sched.run_scoped(|mut w| {
                let mut batch = Vec::new();
                loop {
                    let claimed = w.next_batch(&mut batch, 4);
                    if claimed == 0 {
                        return;
                    }
                    processed.fetch_add(claimed, O::SeqCst);
                    for d in batch.drain(..) {
                        if d > 0 {
                            for _ in 0..fanout {
                                w.spawn(d - 1);
                            }
                        }
                    }
                }
            });
            assert_eq!(
                processed.load(O::SeqCst) as u64,
                expected,
                "fanout {fanout} depth {depth} capacity {capacity}"
            );
            let stats = sched.stats();
            assert_eq!(stats.spawned + stats.injected, expected, "every item entered once");
            assert_eq!(stats.completed, expected, "every item retired once");
        }
    }
}

/// Service mode: with nothing queued, every worker's scan comes up empty
/// (the empty-steal path), they park, and `shutdown()` must wake them all
/// into `Step::Shutdown` — no worker may sleep through it.
#[test]
fn shutdown_wakes_parked_service_workers() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(8, 8);
    let exited = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..8 {
            let sched = &sched;
            let exited = &exited;
            scope.spawn(move || {
                let mut w = sched.worker(i);
                loop {
                    match w.next_step() {
                        Step::Task(_) => panic!("no work was ever published"),
                        Step::Idle(token) => w.park(token),
                        Step::Shutdown => {
                            exited.fetch_add(1, O::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
        // Let workers reach the park before pulling the plug.
        std::thread::sleep(std::time::Duration::from_millis(30));
        sched.shutdown();
    });
    assert_eq!(exited.load(O::SeqCst), 8);
    assert!(sched.stats().empty_scans >= 8, "each worker scanned empty at least once");
}

/// Work published between a failed scan and the park must not be lost:
/// the IdleToken generation check turns the park into a no-op.
#[test]
fn service_mode_processes_injected_work_then_drains_on_shutdown() {
    let sched: Scheduler<u64> = Scheduler::with_capacity(4, 4);
    let sum = std::sync::atomic::AtomicU64::new(0);
    let seen = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..4 {
            let sched = &sched;
            let sum = &sum;
            let seen = &seen;
            scope.spawn(move || {
                let mut w = sched.worker(i);
                loop {
                    match w.next_step() {
                        Step::Task(v) => {
                            sum.fetch_add(v, O::SeqCst);
                            seen.fetch_add(1, O::SeqCst);
                        }
                        Step::Idle(token) => w.park(token),
                        Step::Shutdown => return,
                    }
                }
            });
        }
        for v in 1..=100u64 {
            sched.inject(v);
        }
        while seen.load(O::SeqCst) < 100 {
            std::thread::yield_now();
        }
        sched.shutdown();
    });
    assert_eq!(sum.load(O::SeqCst), 5050);
}

/// A capacity-2 scheduler spawning wide fan-out must spill to the
/// injector and still drain exactly; spills are visible in the stats.
#[test]
fn tiny_deques_spill_to_injector_and_still_drain_exactly() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(2, 2);
    sched.inject(1);
    let processed = AtomicUsize::new(0);
    sched.run_scoped(|mut w| {
        while let Some(d) = w.next() {
            processed.fetch_add(1, O::SeqCst);
            if d > 0 {
                for _ in 0..64 {
                    w.spawn(d - 1);
                }
            }
        }
    });
    assert_eq!(processed.load(O::SeqCst), 65, "root + 64 leaves");
    assert!(sched.stats().spills > 0, "64 children cannot fit a capacity-2 ring");
}

#[test]
fn run_with_driver_shuts_down_even_when_driver_panics() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(2, 8);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.run_with_driver(
            || panic!("driver died"),
            |mut w| loop {
                match w.next_step() {
                    Step::Task(_) => {}
                    Step::Idle(token) => w.park(token),
                    Step::Shutdown => return,
                }
            },
        )
    }));
    // The panic propagates, but only after the workers were woken and
    // joined — reaching this line at all is the regression being tested.
    assert!(result.is_err());
    assert!(sched.is_shutdown());
}

#[test]
#[should_panic(expected = "already claimed")]
fn worker_slot_is_exclusive() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(2, 8);
    let _first = sched.worker(0);
    let _second = sched.worker(0);
}

#[test]
fn dropping_a_worker_releases_its_slot() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(1, 8);
    drop(sched.worker(0));
    let _again = sched.worker(0);
}

#[test]
fn inject_batch_counts_and_drains() {
    let sched: Scheduler<u32> = Scheduler::with_capacity(2, 8);
    assert_eq!(sched.inject_batch(0..10), 10);
    assert_eq!(sched.inject_batch(std::iter::empty()), 0);
    let processed = AtomicUsize::new(0);
    sched.run_scoped(|mut w| {
        while w.next().is_some() {
            processed.fetch_add(1, O::SeqCst);
        }
    });
    assert_eq!(processed.load(O::SeqCst), 10);
    assert_eq!(sched.stats().injected, 10);
}
