//! Fixed-capacity Chase–Lev work-stealing deque.
//!
//! One deque per worker. The **owner** pushes and pops at the *bottom*
//! (LIFO, cache-hot); **thieves** remove batches from the *top* (FIFO,
//! oldest work first) by compare-and-swapping the top index. The buffer
//! never grows: `top`/`bottom` are monotonically increasing indices mapped
//! onto a power-of-two ring, and a full deque rejects the push so the
//! scheduler can spill to the global injector instead. Fixing the capacity
//! sidesteps the buffer-reclamation problem of the classic growable
//! Chase–Lev deque — there is exactly one buffer for the deque's lifetime,
//! so a thief can never observe a freed allocation.
//!
//! The one deliberately racy part is the classic Chase–Lev arbitration: a
//! thief *copies* slots out before CASing `top`, and on CAS failure the
//! copies are abandoned with [`std::mem::forget`] (never dropped, never
//! read). A copy is only *kept* when the CAS succeeds, and a successful
//! CAS from `t` proves the owner never saw `top > t`, which is the
//! precondition for the owner overwriting any slot in `t..t+n` — so every
//! kept copy is a fully published, un-overwritten value. Each unsafe block
//! below carries its own `SAFETY:` note spelling out the local half of
//! this argument.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};

/// How many times a thief retries a CAS-contended victim before giving up
/// and letting the scheduler move on to the next victim.
const STEAL_RETRIES: usize = 4;

/// Fixed-capacity work-stealing deque (see module docs for the protocol).
pub(crate) struct Deque<T> {
    /// Next index a thief will steal. Monotonically increasing; never
    /// reused, so the `top` CAS is immune to ABA.
    top: AtomicIsize,
    /// Next index the owner will push. Only the owner writes it.
    bottom: AtomicIsize,
    /// Ring buffer; slot for index `i` is `buf[i & mask]`.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

// SAFETY: the deque hands `T`s across threads (owner pushes, thief pops),
// which is exactly the `T: Send` bound. Shared access to the UnsafeCell
// slots is arbitrated by the top-CAS protocol described in the module docs.
unsafe impl<T: Send> Sync for Deque<T> {}
// SAFETY: moving the whole deque moves the owned buffer; `T: Send` suffices.
unsafe impl<T: Send> Send for Deque<T> {}

impl<T> Deque<T> {
    /// New empty deque with `capacity` rounded up to a power of two, min 2.
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        Deque { top: AtomicIsize::new(0), bottom: AtomicIsize::new(0), buf, mask: cap - 1 }
    }

    /// Copy the value out of slot `i` without marking it uninitialized.
    ///
    /// SAFETY: index `i` must hold an initialized value, and the caller must
    /// own the slot via `top`-protocol exclusivity — or be a thief that
    /// `forget`s the copy unless its `top` CAS from the pre-read value wins.
    unsafe fn read_at(&self, i: isize) -> T {
        (*self.buf[i as usize & self.mask].get()).assume_init_read()
    }

    /// Owner-side push at the bottom. Returns the item back when the ring
    /// is full so the caller can spill it to the injector.
    pub(crate) fn push(&self, item: T) -> Result<(), T> {
        // hyppo-lint: allow(relaxed-ordering-justified) only the owner writes `bottom`; it re-reads its own last store
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= (self.mask as isize + 1) {
            return Err(item);
        }
        // Thieves only touch indices < `bottom`, and `bottom` has not yet
        // advanced past `b`; writing through MaybeUninit does not drop — the
        // slot's previous occupant (if any) was moved out when it was popped
        // or stolen.
        // SAFETY: `b - t < capacity`, so slot `b & mask` is not aliased by
        // any live index in `t..b` (see the thief/drop argument above).
        unsafe { (*self.buf[b as usize & self.mask].get()).write(item) };
        // Release: pairs with the thief's Acquire load of `bottom`, which
        // publishes the slot write above before the index becomes visible.
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Owner-side pop at the bottom (LIFO).
    pub(crate) fn pop(&self) -> Option<T> {
        // hyppo-lint: allow(relaxed-ordering-justified) owner-only index; the SeqCst fence below orders it against thief CASes
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        // hyppo-lint: allow(relaxed-ordering-justified) reservation store; made globally visible by the SeqCst fence below
        self.bottom.store(b, Ordering::Relaxed);
        // The fence makes the speculative `bottom` decrement visible before
        // we read `top`: either a racing thief sees our reservation, or we
        // see its CAS — the classic Chase–Lev owner/thief arbitration.
        fence(Ordering::SeqCst);
        // hyppo-lint: allow(relaxed-ordering-justified) ordered by the SeqCst fence above
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            // hyppo-lint: allow(relaxed-ordering-justified) owner-only restore of its own index
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        if t == b {
            // Last element: race thieves for it via the top CAS.
            let won = self
                .top
                // hyppo-lint: allow(relaxed-ordering-justified) single-slot arbitration CAS; winner has exclusive slot access (module docs), failure needs no ordering
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // hyppo-lint: allow(relaxed-ordering-justified) owner-only restore of its own index
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            if won {
                // SAFETY: we won the CAS, so no thief holds or will take
                // index `b`; the owner itself wrote the slot (same-thread
                // happens-before).
                return Some(unsafe { self.read_at(b) });
            }
            return None;
        }
        // SAFETY: `t < b` after the fence, so a thief taking index `b` needs
        // `top` to reach `b` first — impossible here, an in-flight CAS from a
        // stale `top` fails. The owner wrote the slot (same-thread order).
        Some(unsafe { self.read_at(b) })
    }

    /// Thief-side batch steal: move up to `max` items (at most half the
    /// victim's visible work, at least one) from the top into `out`.
    /// Returns how many were stolen; `0` means the victim was empty or too
    /// contended to bother with.
    pub(crate) fn steal_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        debug_assert!(max > 0);
        for _ in 0..STEAL_RETRIES {
            let t = self.top.load(Ordering::Acquire);
            // Order the `top` read before the `bottom` read so the window
            // `[t, b)` is never widened by reordering; pairs with the
            // owner's pop fence.
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            let available = b.wrapping_sub(t);
            if available <= 0 {
                return 0;
            }
            // Take at most half (rounded up) so the victim keeps making
            // progress on its own work.
            let n = (available as usize).div_ceil(2).min(max);
            // Racy reads, arbitrated below. Each index in `t..t+n` is `< b`,
            // and the Acquire load of `bottom` above synchronizes with the
            // owner's Release store after writing those slots, so if no
            // overwrite intervened the copies are the published values. An
            // overwrite of any slot in the window requires the owner to have
            // observed `top > t`, which forces the CAS below to fail — and
            // then every copy is forgotten, never read or dropped.
            let mut tmp: Vec<T> = Vec::with_capacity(n);
            for k in 0..n {
                // SAFETY: window copy per the argument above; kept only if
                // the CAS below wins, forgotten otherwise.
                tmp.push(unsafe { self.read_at(t.wrapping_add(k as isize)) });
            }
            if self
                .top
                // hyppo-lint: allow(relaxed-ordering-justified) batch-claim CAS; success transfers slot ownership (module docs), failure path forgets the copies so no ordering is needed
                .compare_exchange(
                    t,
                    t.wrapping_add(n as isize),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                out.extend(tmp);
                return n;
            }
            // Lost the race: another thief (or the owner's last-element
            // pop) advanced `top`. The copies were never ours.
            for item in tmp.drain(..) {
                std::mem::forget(item);
            }
        }
        0
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // `&mut self` proves exclusivity: no owner or thief is live, so
        // every index in `[top, bottom)` holds an initialized value that
        // was never moved out.
        // hyppo-lint: allow(relaxed-ordering-justified) exclusive access via &mut self; no concurrent observers remain
        let t = self.top.load(Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) exclusive access via &mut self; no concurrent observers remain
        let b = self.bottom.load(Ordering::Relaxed);
        let mut i = t;
        while i != b {
            // SAFETY: exclusive access (see above); `[t, b)` is exactly the
            // set of initialized, un-taken slots.
            unsafe {
                drop(self.read_at(i));
            }
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let d: Deque<u32> = Deque::new(8);
        for i in 0..5 {
            d.push(i).unwrap();
        }
        for i in (0..5).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn full_deque_returns_item_for_spill() {
        let d: Deque<u32> = Deque::new(2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(3), "capacity-2 ring is full");
        assert_eq!(d.pop(), Some(2));
        d.push(3).unwrap();
    }

    #[test]
    fn steal_takes_half_from_the_top() {
        let d: Deque<u32> = Deque::new(16);
        for i in 0..8 {
            d.push(i).unwrap();
        }
        let mut out = Vec::new();
        let n = d.steal_into(&mut out, 16);
        assert_eq!(n, 4, "steals half of 8");
        assert_eq!(out, vec![0, 1, 2, 3], "oldest items, FIFO from the top");
        assert_eq!(d.pop(), Some(7), "owner still pops newest");
    }

    #[test]
    fn steal_from_empty_is_zero() {
        let d: Deque<u32> = Deque::new(4);
        let mut out = Vec::new();
        assert_eq!(d.steal_into(&mut out, 4), 0);
        assert!(out.is_empty());
        d.push(9).unwrap();
        assert_eq!(d.pop(), Some(9));
        assert_eq!(d.steal_into(&mut out, 4), 0, "drained deque steals empty again");
    }

    #[test]
    fn drop_releases_leftover_items() {
        use std::rc::Rc;
        // Rc is !Send but this test never crosses threads; count the drops.
        let token = Rc::new(());
        {
            let d: Deque<Rc<()>> = Deque::new(8);
            for _ in 0..5 {
                d.push(Rc::clone(&token)).unwrap();
            }
            assert_eq!(Rc::strong_count(&token), 6);
            let _ = d.pop();
            // 4 items left inside at drop.
        }
        assert_eq!(Rc::strong_count(&token), 1, "deque drop released its slots");
    }

    #[test]
    fn concurrent_owner_and_thieves_account_for_every_item() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as O};
        let d: Deque<u64> = Deque::new(8);
        let sum = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        const N: u64 = 10_000;
        std::thread::scope(|scope| {
            // Two thieves hammer the top while the owner pushes/pops. They
            // exit only once the owner has drained the deque empty and
            // raised `done` — a contended 0-steal before that just retries.
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        let n = d.steal_into(&mut out, 4);
                        for v in out.drain(..) {
                            sum.fetch_add(v, O::SeqCst);
                        }
                        if n == 0 {
                            if done.load(O::SeqCst) {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: push 1..=N (popping when full), popping occasionally
            // so both removal paths race the thieves.
            let mut popped_sum = 0u64;
            for v in 1..=N {
                let mut item = v;
                loop {
                    match d.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            if let Some(p) = d.pop() {
                                popped_sum += p;
                            }
                        }
                    }
                }
                if v % 3 == 0 {
                    if let Some(p) = d.pop() {
                        popped_sum += p;
                    }
                }
            }
            // Drain what's left; once pop() sees empty nothing can reappear
            // (only the owner pushes), so `done` is safe to raise.
            while let Some(p) = d.pop() {
                popped_sum += p;
            }
            sum.fetch_add(popped_sum, O::SeqCst);
            done.store(true, O::SeqCst);
        });
        // Every item 1..=N was counted exactly once, by owner or thief.
        assert_eq!(sum.load(O::SeqCst), N * (N + 1) / 2);
    }
}
