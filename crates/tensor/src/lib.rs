//! Dense numeric substrate for HYPPO's ML operators.
//!
//! The HYPPO paper runs its pipelines on the Python data ecosystem (NumPy
//! arrays, DataFrames). This crate is the Rust stand-in: a row-major dense
//! [`Matrix`], the handful of linear-algebra kernels the ML operators need
//! (Cholesky, symmetric eigendecomposition, orthogonal/power iteration),
//! streaming statistics, seeded random generation, and the [`Dataset`]
//! artifact type (features + target + missing-value mask).
//!
//! Everything is implemented from scratch on `f64`; no BLAS. The kernels are
//! deliberately simple but cache-aware (row-major traversal), since
//! physical-operator *cost asymmetry* is what HYPPO's equivalence
//! optimization exploits and we want those costs to be real.

pub mod dataset;
pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use dataset::{Dataset, TaskKind};
pub use matrix::Matrix;
pub use rng::SeededRng;
