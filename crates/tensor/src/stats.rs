//! Column statistics: two-pass and streaming (Welford) variants.
//!
//! Both variants exist on purpose: the StandardScaler logical operator has
//! two equivalent physical implementations in the reproduction — a two-pass
//! "sklearn-style" one and a single-pass Welford "TF-style" one — mirroring
//! the paper's cross-framework operator equivalences (§III-C2). They produce
//! equal results (up to float round-off) at different costs.

use crate::matrix::Matrix;

/// Per-column mean and (population) standard deviation, two-pass, skipping
/// NaN (missing) entries.
pub fn column_mean_std_two_pass(m: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let d = m.cols();
    let mut mean = vec![0.0; d];
    let mut count = vec![0usize; d];
    for row in m.rows_iter() {
        for (j, &v) in row.iter().enumerate() {
            if !v.is_nan() {
                mean[j] += v;
                count[j] += 1;
            }
        }
    }
    for j in 0..d {
        mean[j] /= count[j].max(1) as f64;
    }
    let mut var = vec![0.0; d];
    for row in m.rows_iter() {
        for (j, &v) in row.iter().enumerate() {
            if !v.is_nan() {
                let dlt = v - mean[j];
                var[j] += dlt * dlt;
            }
        }
    }
    let std: Vec<f64> = var
        .iter()
        .zip(&count)
        .map(|(&s, &n)| if n > 0 { (s / n as f64).sqrt() } else { 0.0 })
        .collect();
    (mean, std)
}

/// Per-column mean and (population) standard deviation in a single pass
/// using Welford's algorithm, skipping NaN entries.
pub fn column_mean_std_welford(m: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let d = m.cols();
    let mut mean = vec![0.0; d];
    let mut m2 = vec![0.0; d];
    let mut count = vec![0usize; d];
    for row in m.rows_iter() {
        for (j, &v) in row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            count[j] += 1;
            let delta = v - mean[j];
            mean[j] += delta / count[j] as f64;
            m2[j] += delta * (v - mean[j]);
        }
    }
    let std: Vec<f64> = m2
        .iter()
        .zip(&count)
        .map(|(&s, &n)| if n > 0 { (s / n as f64).sqrt() } else { 0.0 })
        .collect();
    (mean, std)
}

/// Per-column minimum and maximum, skipping NaN entries.
pub fn column_min_max(m: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let d = m.cols();
    let mut min = vec![f64::INFINITY; d];
    let mut max = vec![f64::NEG_INFINITY; d];
    for row in m.rows_iter() {
        for (j, &v) in row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            min[j] = min[j].min(v);
            max[j] = max[j].max(v);
        }
    }
    (min, max)
}

/// Per-column median (by sorting a copy), skipping NaN entries.
pub fn column_median(m: &Matrix) -> Vec<f64> {
    let d = m.cols();
    let mut out = Vec::with_capacity(d);
    for j in 0..d {
        let mut col: Vec<f64> = m.col(j).into_iter().filter(|v| !v.is_nan()).collect();
        if col.is_empty() {
            out.push(0.0);
            continue;
        }
        col.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        let n = col.len();
        out.push(if n % 2 == 1 { col[n / 2] } else { 0.5 * (col[n / 2 - 1] + col[n / 2]) });
    }
    out
}

/// Per-column quantile `q ∈ [0, 1]` (nearest-rank on a sorted copy),
/// skipping NaN entries.
pub fn column_quantile(m: &Matrix, q: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let d = m.cols();
    let mut out = Vec::with_capacity(d);
    for j in 0..d {
        let mut col: Vec<f64> = m.col(j).into_iter().filter(|v| !v.is_nan()).collect();
        if col.is_empty() {
            out.push(0.0);
            continue;
        }
        col.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        let idx = ((col.len() - 1) as f64 * q).round() as usize;
        out.push(col[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]])
    }

    #[test]
    fn two_pass_known_values() {
        let (mean, std) = column_mean_std_two_pass(&sample());
        assert_eq!(mean, vec![2.5, 25.0]);
        assert!((std[0] - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_two_pass() {
        let m = sample();
        let (m1, s1) = column_mean_std_two_pass(&m);
        let (m2, s2) = column_mean_std_welford(&m);
        for j in 0..2 {
            assert!((m1[j] - m2[j]).abs() < 1e-12);
            assert!((s1[j] - s2[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn nan_entries_are_skipped() {
        let m = Matrix::from_rows(&[&[1.0], &[f64::NAN], &[3.0]]);
        let (mean, _) = column_mean_std_two_pass(&m);
        assert_eq!(mean, vec![2.0]);
        let (mean_w, _) = column_mean_std_welford(&m);
        assert_eq!(mean_w, vec![2.0]);
        let (min, max) = column_min_max(&m);
        assert_eq!((min[0], max[0]), (1.0, 3.0));
        assert_eq!(column_median(&m), vec![2.0]);
    }

    #[test]
    fn min_max_known() {
        let (min, max) = column_min_max(&sample());
        assert_eq!(min, vec![1.0, 10.0]);
        assert_eq!(max, vec![4.0, 40.0]);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(column_median(&sample()), vec![2.5, 25.0]);
        let odd = Matrix::from_rows(&[&[1.0], &[2.0], &[9.0]]);
        assert_eq!(column_median(&odd), vec![2.0]);
    }

    #[test]
    fn quantiles() {
        let m = sample();
        assert_eq!(column_quantile(&m, 0.0), vec![1.0, 10.0]);
        assert_eq!(column_quantile(&m, 1.0), vec![4.0, 40.0]);
    }

    #[test]
    fn all_nan_column_defaults_to_zero() {
        let m = Matrix::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let (mean, std) = column_mean_std_welford(&m);
        assert_eq!((mean[0], std[0]), (0.0, 0.0));
        assert_eq!(column_median(&m), vec![0.0]);
    }
}
