//! Row-major dense `f64` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f64`.
///
/// This is the artifact payload type for all `data`-kind artifacts in the
/// reproduction (the paper's DataFrame/ndarray stand-in). Missing values are
/// represented as `NaN` (the imputation operators understand this).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// In-memory payload size in bytes (used for artifact sizing and the
    /// storage budget accounting).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Straightforward i-k-j loop order (row-major friendly: the inner loop
    /// streams both `other`'s row and the output row).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                for (j, &bkj) in b_row.iter().enumerate() {
                    o_row[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "vector length must equal cols");
        self.rows_iter().map(|row| dot(row, x)).collect()
    }

    /// Gram matrix `selfᵀ * self` (symmetric), computed in one pass over the
    /// rows — the core kernel of covariance-based PCA and normal equations.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut out = Matrix::zeros(d, d);
        for row in self.rows_iter() {
            for i in 0..d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let o = out.row_mut(i);
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    o[j] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        out
    }

    /// `selfᵀ * y` for a target vector — right-hand side of normal equations.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, y.len());
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in self.rows_iter().zip(y) {
            if yi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * yi;
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Select a subset of rows (by index) into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &r in idx {
            data.extend_from_slice(self.row(r));
        }
        Matrix { rows: idx.len(), cols: self.cols, data }
    }

    /// Select a subset of columns (by index) into a new matrix.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in idx.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// Horizontally concatenate `self | other`.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match for hstack");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically concatenate `self` on top of `other`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "col counts must match for vstack");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Frobenius-norm distance to another matrix of the same shape.
    pub fn distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// Whether any element is NaN (a missing value).
    pub fn has_missing(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for row in self.rows_iter() {
                write!(f, "\n  {row:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let expected = a.transpose().matmul(&a);
        let g = a.gram();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g.get(i, j), expected.get(i, j)));
            }
        }
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = [1.0, 0.5, 2.0];
        let expected = a.transpose().matvec(&y);
        assert_eq!(a.t_matvec(&y), expected);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(
            a.select_rows(&[2, 0]),
            Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]])
        );
        assert_eq!(a.select_cols(&[1]), Matrix::from_rows(&[&[2.0], &[5.0], &[8.0]]));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hstack(&b), Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vstack(&b), Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn size_and_missing() {
        let mut a = Matrix::zeros(2, 2);
        assert_eq!(a.size_bytes(), 32);
        assert!(!a.has_missing());
        a.set(0, 1, f64::NAN);
        assert!(a.has_missing());
    }

    #[test]
    fn distance_is_frobenius() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::filled(2, 2, 1.0);
        assert!(approx(a.distance(&b), 2.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.5, 2.5]]);
        let s = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
