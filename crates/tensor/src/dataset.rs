//! The `Dataset` artifact: features, target, names, task kind.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Learning-task kind carried by a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Binary classification (labels in {0, 1}), the HIGGS use case.
    Classification,
    /// Real-valued regression, the TAXI use case.
    Regression,
}

/// A supervised-learning dataset: an `n × d` feature matrix, an `n`-vector
/// target, feature names, and the task kind.
///
/// Missing feature values are `NaN` in the matrix; imputation operators
/// clear them. This is the payload behind the paper's `train`/`test`
/// artifact types.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub x: Matrix,
    /// Target vector, one entry per example.
    pub y: Vec<f64>,
    /// Feature names (len == x.cols()).
    pub feature_names: Vec<String>,
    /// Task kind.
    pub task: TaskKind,
}

impl Dataset {
    /// Build a dataset, checking shape consistency.
    pub fn new(x: Matrix, y: Vec<f64>, feature_names: Vec<String>, task: TaskKind) -> Self {
        assert_eq!(x.rows(), y.len(), "target length must equal row count");
        assert_eq!(x.cols(), feature_names.len(), "one name per feature");
        Dataset { x, y, feature_names, task }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// In-memory payload size in bytes (matrix + target + names).
    pub fn size_bytes(&self) -> usize {
        self.x.size_bytes()
            + self.y.len() * std::mem::size_of::<f64>()
            + self.feature_names.iter().map(|s| s.len()).sum::<usize>()
    }

    /// A dataset with the same target but a replaced feature matrix (used by
    /// transform tasks; names are regenerated when the width changes).
    pub fn with_features(&self, x: Matrix, names: Option<Vec<String>>) -> Dataset {
        let feature_names = match names {
            Some(n) => n,
            None if x.cols() == self.feature_names.len() => self.feature_names.clone(),
            None => (0..x.cols()).map(|i| format!("f{i}")).collect(),
        };
        Dataset::new(x, self.y.clone(), feature_names, self.task)
    }

    /// Select a subset of rows into a new dataset.
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        let x = self.x.select_rows(idx);
        let y = idx.iter().map(|&i| self.y[i]).collect();
        Dataset::new(x, y, self.feature_names.clone(), self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
            vec![0.0, 1.0, 0.0],
            vec!["a".into(), "b".into()],
            TaskKind::Classification,
        )
    }

    #[test]
    fn basic_accessors() {
        let d = ds();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.task, TaskKind::Classification);
    }

    #[test]
    fn size_accounts_for_all_parts() {
        let d = ds();
        assert_eq!(d.size_bytes(), 6 * 8 + 3 * 8 + 2);
    }

    #[test]
    fn with_features_same_width_keeps_names() {
        let d = ds();
        let d2 = d.with_features(Matrix::zeros(3, 2), None);
        assert_eq!(d2.feature_names, d.feature_names);
        assert_eq!(d2.y, d.y);
    }

    #[test]
    fn with_features_new_width_regenerates_names() {
        let d = ds();
        let d2 = d.with_features(Matrix::zeros(3, 5), None);
        assert_eq!(d2.feature_names.len(), 5);
        assert_eq!(d2.feature_names[4], "f4");
    }

    #[test]
    fn select_rows_takes_matching_targets() {
        let d = ds();
        let sub = d.select_rows(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.y, vec![0.0, 0.0]);
        assert_eq!(sub.x.row(0), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "target length")]
    fn mismatched_target_rejected() {
        Dataset::new(Matrix::zeros(2, 1), vec![0.0], vec!["a".into()], TaskKind::Regression);
    }
}
