//! Seeded random generation helpers.
//!
//! All workload generation in the reproduction is deterministic given a
//! seed, so every experiment is replayable. The generator is a
//! self-contained xoshiro256++ (seeded through splitmix64) — the build
//! environment is offline, so no external `rand` crate — with the normal
//! variates used by the dataset generators coming from a Box–Muller
//! transform implemented here.

/// A seeded RNG with the sampling helpers the workload generators need.
#[derive(Clone, Debug)]
pub struct SeededRng {
    state: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Deterministic RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SeededRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent child RNG (stable given the parent's state).
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.next_u64())
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a nonempty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u1 == 0 so ln() is finite.
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Sample an index according to (unnormalized, non-negative) weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of indices `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let sa: Vec<f64> = (0..10).map(|_| a.uniform(0.0, 1.0)).collect();
        let sb: Vec<f64> = (0..10).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SeededRng::new(3);
        let mut counts = [0usize; 3];
        for _ in 0..9_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
        // Roughly 1:2 split.
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((1.5..2.7).contains(&ratio), "ratio {ratio} not ~2");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = SeededRng::new(9);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_deterministic_children() {
        let mut a = SeededRng::new(11);
        let mut b = SeededRng::new(11);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.uniform(0.0, 1.0), cb.uniform(0.0, 1.0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SeededRng::new(13);
        for _ in 0..1_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }
}
