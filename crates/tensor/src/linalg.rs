//! Linear-algebra kernels used by the ML operators.
//!
//! Only what the operators need, implemented from scratch:
//! - [`cholesky_solve`] — SPD solve for normal-equation / ridge regression;
//! - [`jacobi_eigen`] — full symmetric eigendecomposition, the *exact* (and
//!   expensive) kernel behind the "sklearn-style" PCA physical operator;
//! - [`orthogonal_iteration`] — top-k eigenvectors via subspace iteration,
//!   the *randomized/low-rank* (cheap) kernel behind the "torch
//!   `pca_lowrank`-style" PCA physical operator.
//!
//! The exact/approximate pair is deliberately asymmetric in cost: that
//! asymmetry is what makes HYPPO's operator-equivalence optimization win.

use crate::matrix::{dot, Matrix};

/// Error raised by numeric kernels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite,
    /// Iterative method failed to converge within its iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence => write!(f, "iteration failed to converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let n = l.rows();
    assert_eq!(b.len(), n);
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            sum -= l.get(i, k) * yk;
        }
        y[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(k, i) * xk;
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Full eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and eigenvectors as the *columns* of the returned matrix.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> Result<(Vec<f64>, Matrix), LinalgError> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "eigendecomposition requires a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-12 {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
            pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("eigenvalues are finite"));
            let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let order: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let vectors = v.select_cols(&order);
            return Ok((values, vectors));
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard Jacobi rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp + s * mkq);
                    m.set(k, q, -s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk + s * mqk);
                    m.set(q, k, -s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp + s * vkq);
                    v.set(k, q, -s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence)
}

/// Top-`k` eigenpairs of a symmetric PSD matrix via orthogonal (subspace)
/// iteration with Gram–Schmidt re-orthogonalization.
///
/// Much cheaper than [`jacobi_eigen`] when `k ≪ n`. `seed_basis` supplies the
/// (random) starting basis as an `n × k` matrix.
pub fn orthogonal_iteration(a: &Matrix, seed_basis: Matrix, iters: usize) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    let k = seed_basis.cols();
    assert_eq!(seed_basis.rows(), n, "basis rows must match matrix size");
    let mut q = seed_basis;
    gram_schmidt(&mut q);
    for _ in 0..iters {
        q = a.matmul(&q);
        gram_schmidt(&mut q);
    }
    // Rayleigh quotients as eigenvalue estimates.
    let aq = a.matmul(&q);
    let mut values = Vec::with_capacity(k);
    for j in 0..k {
        let qj = q.col(j);
        let aqj = aq.col(j);
        values.push(dot(&qj, &aqj));
    }
    // Sort descending by eigenvalue estimate.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| values[j].partial_cmp(&values[i]).expect("finite values"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let sorted_vectors = q.select_cols(&order);
    (sorted_values, sorted_vectors)
}

/// In-place modified Gram–Schmidt on the columns of `q`.
fn gram_schmidt(q: &mut Matrix) {
    let (n, k) = q.shape();
    for j in 0..k {
        for prev in 0..j {
            let proj: f64 = (0..n).map(|i| q.get(i, j) * q.get(i, prev)).sum();
            for i in 0..n {
                let v = q.get(i, j) - proj * q.get(i, prev);
                q.set(i, j, v);
            }
        }
        let norm: f64 = (0..n).map(|i| q.get(i, j) * q.get(i, j)).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for i in 0..n {
                let v = q.get(i, j) / norm;
                q.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]])
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(a.distance(&recon) < 1e-9);
    }

    #[test]
    fn cholesky_solve_solves() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(approx(*xi, *ti, 1e-9));
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn jacobi_finds_known_eigenvalues() {
        // diag(5, 2) rotated: eigenvalues stay {5, 2}.
        let a = Matrix::from_rows(&[&[3.5, 1.5], &[1.5, 3.5]]);
        let (values, vectors) = jacobi_eigen(&a, 50).unwrap();
        assert!(approx(values[0], 5.0, 1e-9));
        assert!(approx(values[1], 2.0, 1e-9));
        // A v = λ v for the top eigenvector.
        let v0 = vectors.col(0);
        let av0 = a.matvec(&v0);
        for (avi, vi) in av0.iter().zip(&v0) {
            assert!(approx(*avi, 5.0 * vi, 1e-8));
        }
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a = spd3();
        let (_, v) = jacobi_eigen(&a, 100).unwrap();
        let vtv = v.transpose().matmul(&v);
        assert!(vtv.distance(&Matrix::identity(3)) < 1e-8);
    }

    #[test]
    fn orthogonal_iteration_matches_jacobi_top_eigenpair() {
        let a = spd3();
        let (exact, _) = jacobi_eigen(&a, 100).unwrap();
        let seed = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0], &[0.4, -0.2]]);
        let (approx_vals, vectors) = orthogonal_iteration(&a, seed, 200);
        assert!(approx(approx_vals[0], exact[0], 1e-6));
        assert!(approx(approx_vals[1], exact[1], 1e-6));
        // Columns orthonormal.
        let vtv = vectors.transpose().matmul(&vectors);
        assert!(vtv.distance(&Matrix::identity(2)) < 1e-8);
    }

    #[test]
    fn jacobi_on_diagonal_is_immediate() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 7.0]]);
        let (values, _) = jacobi_eigen(&a, 5).unwrap();
        assert_eq!(values, vec![7.0, 2.0]);
    }

    #[test]
    fn errors_display() {
        assert!(LinalgError::NoConvergence.to_string().contains("converge"));
        assert!(LinalgError::NotPositiveDefinite.to_string().contains("positive"));
    }
}
