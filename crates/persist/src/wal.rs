//! The write-ahead log: an append-only, length-prefixed + CRC-framed file
//! of [`DurableEvent`]s.
//!
//! # Format
//!
//! ```text
//! [b"HYPPOWAL"][version: u32 le]            — 12-byte header
//! [len: u32 le][crc32(payload): u32 le][payload]   — repeated records
//! ```
//!
//! The payload is the JSON serialization of one [`DurableEvent`]. A batch
//! append is one `write_all` + one `fsync`, so record order on disk is the
//! order hooks delivered events in — which, for `SharedHyppo`, is the
//! history write-lock linearization order.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a *torn tail*: a trailing record whose length
//! prefix, checksum, or payload is incomplete. [`read_wal`] stops at the
//! first record that fails any check and reports everything after the last
//! valid record as torn; [`WalWriter::open`] physically truncates the torn
//! bytes so the next append starts at a record boundary. Only the magic
//! header is unforgiving — a file that exists but does not start with
//! `HYPPOWAL` is some other file, and overwriting it would destroy data we
//! do not own.

use hyppo_core::codec::crc32;
use hyppo_core::durable::{DurabilityHook, DurableEvent};
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HYPPOWAL";
/// Current format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version.
pub const WAL_HEADER_LEN: u64 = 12;
/// Upper bound on a single record's payload; a larger length prefix is
/// treated as a torn/corrupt tail rather than trusted.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// What [`read_wal`] found in a WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalContents {
    /// Every valid event, in append order.
    pub events: Vec<DurableEvent>,
    /// Bytes of the valid prefix (header + whole records). Appends must
    /// resume here.
    pub valid_bytes: u64,
    /// Bytes after the valid prefix (a torn or corrupt tail). Zero for a
    /// cleanly closed log.
    pub torn_bytes: u64,
    /// Byte offset after the header and after each valid record —
    /// `boundaries[k]` is the file length holding exactly `k` events.
    /// Empty when the file is missing or its header is torn.
    pub boundaries: Vec<u64>,
}

/// Read and validate a WAL file. A missing file is an empty log; a present
/// file with a foreign header is an error (never silently overwritten).
pub fn read_wal(path: &Path) -> std::io::Result<WalContents> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalContents::default()),
        Err(e) => return Err(e),
    };
    if bytes.len() < WAL_HEADER_LEN as usize {
        // Crash during header creation: the whole file is a torn tail.
        return Ok(WalContents { torn_bytes: bytes.len() as u64, ..Default::default() });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not a HYPPO WAL (bad magic)", path.display()),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version > WAL_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("WAL version {version} is newer than supported {WAL_VERSION}"),
        ));
    }
    let mut contents = WalContents { valid_bytes: WAL_HEADER_LEN, ..Default::default() };
    contents.boundaries.push(WAL_HEADER_LEN);
    let mut off = WAL_HEADER_LEN as usize;
    loop {
        if off + 8 > bytes.len() {
            break; // torn record header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("length checked"));
        let stored_crc =
            u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("length checked"));
        if len > MAX_RECORD_LEN {
            break; // implausible length: torn or corrupt
        }
        let end = off + 8 + len as usize;
        if end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[off + 8..end];
        if crc32(payload) != stored_crc {
            break; // corrupt payload
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        let Ok(event) = serde_json::from_str::<DurableEvent>(text) else { break };
        contents.events.push(event);
        off = end;
        contents.valid_bytes = off as u64;
        contents.boundaries.push(off as u64);
    }
    contents.torn_bytes = bytes.len() as u64 - contents.valid_bytes;
    Ok(contents)
}

/// Append half of the WAL: owns the open file, truncates torn tails on
/// open, frames and fsyncs every batch.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Open (or create) the WAL at `path`, validating the existing
    /// contents and physically truncating any torn tail. Returns the
    /// writer positioned at the end of the valid prefix together with the
    /// validated contents for replay.
    pub fn open(path: &Path) -> std::io::Result<(Self, WalContents)> {
        let contents = read_wal(path)?;
        let mut file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        let len = if contents.valid_bytes < WAL_HEADER_LEN {
            // Fresh file, or a header torn mid-creation: (re)write it.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_all()?;
            WAL_HEADER_LEN
        } else {
            if contents.torn_bytes > 0 {
                file.set_len(contents.valid_bytes)?;
                file.sync_all()?;
            }
            file.seek(SeekFrom::Start(contents.valid_bytes))?;
            contents.valid_bytes
        };
        Ok((WalWriter { file, path: path.to_path_buf(), len }, contents))
    }

    /// Durably append a batch of events: one buffered write, one fsync.
    pub fn append(&mut self, events: &[DurableEvent]) -> std::io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for event in events {
            let payload = serde_json::to_string(event)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let payload = payload.as_bytes();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
        }
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.len += buf.len() as u64;
        Ok(())
    }

    /// Truncate the log back to an empty (header-only) state. Called after
    /// a checkpoint has made the logged events redundant — the snapshot
    /// must be durably on disk *before* this runs.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_all()?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }

    /// Current file length in bytes (header + appended records).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The file path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// [`DurabilityHook`] adapter: appends every drained batch to a shared
/// [`WalWriter`]. Clonable so the same log can back a serial `Hyppo` and
/// later a `SharedHyppo` without reopening the file.
#[derive(Clone, Debug)]
pub struct WalHook {
    writer: Arc<Mutex<WalWriter>>,
}

impl WalHook {
    /// Hook appending to `writer`.
    pub fn new(writer: Arc<Mutex<WalWriter>>) -> Self {
        WalHook { writer }
    }
}

impl DurabilityHook for WalHook {
    fn append(&mut self, events: &[DurableEvent]) -> std::io::Result<()> {
        // hyppo-lint: allow(blocking-in-critical-section) the writer mutex
        // exists to serialize append+fsync (DESIGN.md §12); holding it across
        // the IO is the durability contract, not an accident
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).append(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_pipeline::ArtifactName;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hyppo_wal_{}_{}", name, std::process::id()))
    }

    fn sample_events(n: usize) -> Vec<DurableEvent> {
        (0..n)
            .map(|i| match i % 3 {
                0 => DurableEvent::Dataset { id: format!("d{i}"), size_bytes: i as u64 },
                1 => DurableEvent::Touch { name: ArtifactName(i as u64) },
                _ => DurableEvent::Materialize { name: ArtifactName(i as u64) },
            })
            .collect()
    }

    #[test]
    fn append_then_read_roundtrips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut w, contents) = WalWriter::open(&path).unwrap();
        assert!(contents.events.is_empty());
        let events = sample_events(7);
        w.append(&events[..3]).unwrap();
        w.append(&events[3..]).unwrap();
        let back = read_wal(&path).unwrap();
        assert_eq!(back.events, events);
        assert_eq!(back.torn_bytes, 0);
        assert_eq!(back.valid_bytes, w.len_bytes());
        assert_eq!(back.boundaries.len(), events.len() + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut w, _) = WalWriter::open(&path).unwrap();
        let events = sample_events(4);
        w.append(&events).unwrap();
        drop(w);
        let full = read_wal(&path).unwrap();
        // Cut mid-way through the last record.
        let cut = full.boundaries[events.len() - 1] + 3;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let torn = read_wal(&path).unwrap();
        assert_eq!(torn.events, events[..events.len() - 1]);
        assert_eq!(torn.torn_bytes, 3);

        // Reopen truncates and can append again.
        let (mut w, contents) = WalWriter::open(&path).unwrap();
        assert_eq!(contents.events.len(), events.len() - 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), contents.valid_bytes);
        w.append(&events[events.len() - 1..]).unwrap();
        assert_eq!(read_wal(&path).unwrap().events, events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_payload_truncates_from_the_corruption() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut w, _) = WalWriter::open(&path).unwrap();
        let events = sample_events(3);
        w.append(&events).unwrap();
        drop(w);
        // Flip one byte inside the second record's payload.
        let full = read_wal(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let off = full.boundaries[1] as usize + 8 + 1;
        bytes[off] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let back = read_wal(&path).unwrap();
        assert_eq!(back.events, events[..1], "only the prefix before the corruption survives");
        assert!(back.torn_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_an_error_not_overwritten() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a wal, but longer than a header").unwrap();
        assert!(read_wal(&path).is_err());
        assert!(WalWriter::open(&path).is_err());
        // Contents untouched.
        assert!(std::fs::read(&path).unwrap().starts_with(b"definitely"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let contents = read_wal(&path).unwrap();
        assert!(contents.events.is_empty());
        assert_eq!(contents.valid_bytes, 0);
        assert!(contents.boundaries.is_empty());
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let (mut w, _) = WalWriter::open(&path).unwrap();
        w.append(&sample_events(5)).unwrap();
        w.reset().unwrap();
        assert_eq!(w.len_bytes(), WAL_HEADER_LEN);
        let back = read_wal(&path).unwrap();
        assert!(back.events.is_empty());
        assert_eq!(back.torn_bytes, 0);
        // Still appendable after reset.
        w.append(&sample_events(2)).unwrap();
        assert_eq!(read_wal(&path).unwrap().events.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
