//! # hyppo-persist — durability for HYPPO sessions
//!
//! The paper's system is in-memory: the equivalence-augmented history
//! hypergraph, the operator cost estimator, and the materialized-artifact
//! store all vanish when the process exits, and with them every reuse
//! opportunity the session paid to discover. This crate makes that state
//! crash-recoverable without touching the optimizer:
//!
//! - [`wal`] — an append-only, CRC-framed write-ahead log of
//!   [`hyppo_core::durable::DurableEvent`]s. [`WalHook`] plugs into
//!   [`hyppo_core::system::Hyppo::attach_durability`] (or the shared
//!   runtime facade) and fsyncs each submission's events before the
//!   submission returns. Torn or corrupt tails are detected by CRC and
//!   physically truncated on open.
//! - [`group`] — [`GroupCommitWal`], the serving-layer variant of the
//!   hook: concurrent sessions' drained events buffer in commit (epoch)
//!   order and [`GroupCommitWal::flush_group`] writes each commit group as
//!   one framed batch — one fsync per group boundary instead of one per
//!   submission.
//! - [`store`] — [`DiskArtifactStorage`], a disk-backed
//!   [`hyppo_core::store::ArtifactStorage`] with byte-budgeted eviction
//!   ranked by the paper's materializer gain function
//!   ([`hyppo_core::materialize::gain`]).
//! - [`session`] — [`DurableHyppo`], the facade that ties them together:
//!   snapshot + WAL-replay recovery that rebuilds the system
//!   *bit-identically* (same bounds-cache keys, same planner output
//!   bytes), payload reconciliation for crashes between the WAL flush and
//!   the artifact mirror, and [`DurableHyppo::checkpoint`] to bound
//!   recovery time.
//!
//! Recovery correctness is argued in DESIGN.md §12 and enforced by the
//! crash-recovery property suite (`tests/persist_recovery_props.rs` at the
//! workspace root), which truncates the WAL at every record boundary and
//! mid-record across 100+ seeded sessions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod group;
pub mod session;
pub mod store;
pub mod wal;

pub use group::{GroupCommitStats, GroupCommitWal};
pub use session::{DurableHyppo, RecoveryReport};
pub use store::DiskArtifactStorage;
pub use wal::{read_wal, WalContents, WalHook, WalWriter, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION};
