//! Disk-backed artifact storage with gain-ranked, byte-budgeted eviction.
//!
//! [`DiskArtifactStorage`] implements the core [`ArtifactStorage`] trait
//! against a directory of spill files (one `a{hex}.art` per artifact,
//! written atomically), so the executor, cost annotator, and materializer
//! can run against durable storage exactly as they run against the
//! in-memory [`hyppo_core::ArtifactStore`].
//!
//! Reads are cached: the first `load_artifact` of a name reads the file
//! (cold), later loads decode from the in-memory payload cache (warm) —
//! the cold/warm gap is what `BENCH_persist.json` measures. When a byte
//! budget is set, inserts evict the lowest-value artifacts first, ranked
//! by the paper's materializer gain `freq · cost / load`
//! ([`hyppo_core::materialize::gain`]) — the same quantity the in-memory
//! materializer maximizes, so disk eviction and materialization pull in
//! the same direction.

use bytes::Bytes;
use hyppo_core::codec::{self, CodecError};
use hyppo_core::materialize::gain;
use hyppo_core::persist::atomic_write;
use hyppo_core::store::ArtifactStorage;
use hyppo_ml::Artifact;
use hyppo_pipeline::ArtifactName;
use hyppo_tensor::Dataset;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Per-artifact ranking inputs for gain-based eviction.
#[derive(Clone, Copy, Debug, Default)]
struct ArtifactMeta {
    /// Observed load count (bumped by every `load_artifact`).
    freq: u64,
    /// Cost of recomputing the artifact, in seconds (from history stats).
    compute_cost: f64,
}

/// Directory-backed [`ArtifactStorage`] with a warm payload cache and
/// budget-bounded, gain-ranked eviction.
#[derive(Debug)]
pub struct DiskArtifactStorage {
    dir: PathBuf,
    /// Byte budget for spilled artifacts; `0` means unbounded (the mirror
    /// of an already-budgeted in-memory store needs no second budget).
    budget_bytes: u64,
    /// Registered raw datasets (in memory, like the core store — sources
    /// are not eviction candidates and are re-registered per session).
    datasets: HashMap<String, Dataset>,
    /// Encoded size of every spilled artifact. A `BTreeMap` so iteration
    /// (and therefore eviction tie-breaking) is deterministic.
    index: BTreeMap<ArtifactName, u64>,
    /// Warm cache of encoded payloads.
    cache: HashMap<ArtifactName, Bytes>,
    /// Gain inputs per artifact.
    meta: HashMap<ArtifactName, ArtifactMeta>,
    /// Modelled read/write bandwidth in bytes/second (cost model parity
    /// with the in-memory store).
    pub bandwidth: f64,
    /// Fixed per-operation overhead in seconds.
    pub overhead: f64,
}

/// Artifact name encoded in a spill file name (`a{hex}.art`), if any.
fn spill_file_name(file: &str) -> Option<ArtifactName> {
    let stem = file.strip_suffix(".art")?;
    let hex = stem.strip_prefix('a')?;
    u64::from_str_radix(hex, 16).ok().map(ArtifactName)
}

impl DiskArtifactStorage {
    /// Open (or create) a spill directory, indexing any `a{hex}.art` files
    /// already in it. `budget_bytes == 0` disables eviction.
    pub fn open(dir: &Path, budget_bytes: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut index = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let file = entry.file_name().to_string_lossy().into_owned();
            if let Some(name) = spill_file_name(&file) {
                if entry.path().is_file() {
                    index.insert(name, entry.metadata()?.len());
                }
            }
        }
        Ok(DiskArtifactStorage {
            dir: dir.to_path_buf(),
            budget_bytes,
            datasets: HashMap::new(),
            index,
            cache: HashMap::new(),
            meta: HashMap::new(),
            bandwidth: 500.0 * 1_048_576.0,
            overhead: 2e-4,
        })
    }

    fn path_of(&self, name: ArtifactName) -> PathBuf {
        self.dir.join(format!("{name}.art"))
    }

    fn io_cost(&self, bytes: usize) -> f64 {
        self.overhead + bytes as f64 / self.bandwidth
    }

    /// Register a raw source dataset (outside the budget, in memory).
    pub fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.datasets.insert(id.to_string(), dataset);
    }

    /// Record the history statistics that drive gain-ranked eviction.
    pub fn record_stats(&mut self, name: ArtifactName, freq: u64, compute_cost: f64) {
        let meta = self.meta.entry(name).or_default();
        meta.freq = meta.freq.max(freq);
        meta.compute_cost = compute_cost;
    }

    /// Names of all spilled artifacts, in order.
    pub fn artifact_names(&self) -> impl Iterator<Item = ArtifactName> + '_ {
        self.index.keys().copied()
    }

    /// Number of spilled artifacts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Size in bytes of a spilled payload, if present.
    pub fn artifact_size(&self, name: ArtifactName) -> Option<u64> {
        self.index.get(&name).copied()
    }

    /// Whether nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Raw encoded payload of a spilled artifact (cache, then disk).
    pub fn raw(&mut self, name: ArtifactName) -> std::io::Result<Option<Bytes>> {
        if !self.index.contains_key(&name) {
            return Ok(None);
        }
        if let Some(bytes) = self.cache.get(&name) {
            return Ok(Some(bytes.clone()));
        }
        let bytes = Bytes::from(std::fs::read(self.path_of(name))?);
        self.cache.insert(name, bytes.clone());
        Ok(Some(bytes))
    }

    /// Spill an already-encoded payload verbatim (mirror path: payloads
    /// move from the in-memory store without a decode/encode round trip).
    /// Returns the artifacts evicted to stay within budget.
    pub fn put_raw(
        &mut self,
        name: ArtifactName,
        bytes: &Bytes,
    ) -> std::io::Result<Vec<ArtifactName>> {
        atomic_write(&self.path_of(name), bytes)?;
        self.index.insert(name, bytes.len() as u64);
        self.cache.insert(name, bytes.clone());
        self.evict_to_budget(name)
    }

    /// Remove a spilled payload (mirror path for evictions).
    pub fn remove_raw(&mut self, name: ArtifactName) -> std::io::Result<Option<u64>> {
        let Some(size) = self.index.remove(&name) else { return Ok(None) };
        self.cache.remove(&name);
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Some(size))
    }

    /// Drop the warm payload cache (bench instrumentation: forces the next
    /// load of every artifact to hit the disk again).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Evict lowest-gain artifacts until within budget. `keep` (the
    /// artifact just inserted) is evicted last — a store must never reject
    /// the payload it was just asked to hold while cheaper-to-recompute
    /// artifacts occupy its budget.
    fn evict_to_budget(&mut self, keep: ArtifactName) -> std::io::Result<Vec<ArtifactName>> {
        let mut evicted = Vec::new();
        if self.budget_bytes == 0 {
            return Ok(evicted);
        }
        while self.used_bytes() > self.budget_bytes && self.index.len() > 1 {
            let victim = self
                .index
                .iter()
                .filter(|(&n, _)| n != keep)
                .map(|(&n, &size)| {
                    let meta = self.meta.get(&n).copied().unwrap_or_default();
                    (n, gain(meta.freq, meta.compute_cost, self.io_cost(size as usize)))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .map(|(n, _)| n);
            let Some(victim) = victim else { break };
            self.remove_raw(victim)?;
            evicted.push(victim);
        }
        // The kept artifact alone may still exceed the budget: evict it too
        // rather than silently violating the bound.
        if self.used_bytes() > self.budget_bytes {
            self.remove_raw(keep)?;
            evicted.push(keep);
        }
        Ok(evicted)
    }
}

impl ArtifactStorage for DiskArtifactStorage {
    fn dataset_shape(&self, id: &str) -> Option<(usize, usize)> {
        self.datasets.get(id).map(|d| (d.len(), d.n_features()))
    }

    fn dataset_bytes(&self, id: &str) -> Option<u64> {
        self.datasets.get(id).map(|d| d.size_bytes() as u64)
    }

    fn load_dataset(&self, id: &str) -> Option<(Artifact, f64)> {
        let d = self.datasets.get(id)?;
        let cost = self.io_cost(d.size_bytes());
        Some((Artifact::Data(d.clone()), cost))
    }

    fn load_artifact(&self, name: ArtifactName) -> Result<Option<(Artifact, f64)>, CodecError> {
        if !self.index.contains_key(&name) {
            return Ok(None);
        }
        let start = Instant::now();
        let decoded = match self.cache.get(&name) {
            Some(bytes) => (codec::decode(bytes)?, bytes.len()),
            None => {
                // Cold read. The trait takes `&self`, so the payload cannot
                // be cached here; `DiskArtifactStorage::raw` (used by the
                // durable session and the bench) is the warming path.
                let bytes = std::fs::read(self.path_of(name))
                    .map_err(|e| CodecError(format!("reading {name}: {e}")))?;
                (codec::decode(&bytes)?, bytes.len())
            }
        };
        let (artifact, len) = decoded;
        let measured = start.elapsed().as_secs_f64();
        Ok(Some((artifact, measured + self.io_cost(len))))
    }

    fn contains_artifact(&self, name: ArtifactName) -> bool {
        self.index.contains_key(&name)
    }

    fn artifact_size(&self, name: ArtifactName) -> Option<u64> {
        self.index.get(&name).copied()
    }

    fn put_artifact(&mut self, name: ArtifactName, artifact: &Artifact) -> (u64, f64) {
        let start = Instant::now();
        let bytes = codec::encode(artifact);
        let len = bytes.len();
        // IO failure degrades to a cache-only entry: the artifact stays
        // loadable this session, and recovery reconciles flags against the
        // payloads that actually reached disk.
        if self.put_raw(name, &bytes).is_err() {
            self.index.insert(name, len as u64);
            self.cache.insert(name, bytes);
        }
        (len as u64, start.elapsed().as_secs_f64() + self.io_cost(len))
    }

    fn remove_artifact(&mut self, name: ArtifactName) -> Option<u64> {
        self.remove_raw(name).ok().flatten()
    }

    fn used_bytes(&self) -> u64 {
        self.index.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_pipeline::naming::dataset_name;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hyppo_disk_{}_{}", name, std::process::id()))
    }

    #[test]
    fn put_survives_reopen() {
        let dir = tmp("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let name = dataset_name("x");
        let artifact = Artifact::Predictions(vec![1.0, 2.0, 3.0]);
        {
            let mut store = DiskArtifactStorage::open(&dir, 0).unwrap();
            let (bytes, cost) = store.put_artifact(name, &artifact);
            assert!(bytes > 0);
            assert!(cost > 0.0);
        }
        // A fresh instance (cold cache) indexes the file and decodes it.
        let store = DiskArtifactStorage::open(&dir, 0).unwrap();
        assert!(store.contains_artifact(name));
        assert_eq!(store.artifact_size(name), Some(codec::encoded_size(&artifact)));
        let (back, cost) = store.load_artifact(name).unwrap().unwrap();
        assert_eq!(back, artifact);
        assert!(cost > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_drops_lowest_gain_first() {
        let dir = tmp("gain");
        let _ = std::fs::remove_dir_all(&dir);
        let cheap = ArtifactName(1);
        let hot = ArtifactName(2);
        let payload = Artifact::Predictions(vec![0.0; 64]);
        let size = codec::encoded_size(&payload);
        // Budget fits two payloads; the third insert forces one eviction.
        let mut store = DiskArtifactStorage::open(&dir, 2 * size).unwrap();
        store.put_artifact(cheap, &payload);
        store.put_artifact(hot, &payload);
        store.record_stats(cheap, 1, 1e-6); // trivially recomputable
        store.record_stats(hot, 50, 2.0); // hot and expensive
        let fresh = ArtifactName(3);
        store.put_artifact(fresh, &payload);
        assert!(!store.contains_artifact(cheap), "lowest gain must go first");
        assert!(store.contains_artifact(hot));
        assert!(store.contains_artifact(fresh));
        assert!(store.used_bytes() <= 2 * size);
        // The file is gone too, not just the index entry.
        assert!(!store.path_of(cheap).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_single_artifact_does_not_break_the_budget() {
        let dir = tmp("oversize");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskArtifactStorage::open(&dir, 8).unwrap();
        let name = ArtifactName(9);
        store.put_artifact(name, &Artifact::Predictions(vec![0.0; 1024]));
        assert!(store.used_bytes() <= 8);
        assert!(!store.contains_artifact(name));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_a_codec_error() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a000000000000002a.art"), b"garbage").unwrap();
        let store = DiskArtifactStorage::open(&dir, 0).unwrap();
        assert!(store.load_artifact(ArtifactName(0x2a)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn datasets_load_like_the_core_store() {
        use hyppo_tensor::{Matrix, TaskKind};
        let dir = tmp("datasets");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskArtifactStorage::open(&dir, 0).unwrap();
        let d = Dataset::new(
            Matrix::filled(10, 3, 1.0),
            vec![0.0; 10],
            (0..3).map(|i| format!("f{i}")).collect(),
            TaskKind::Regression,
        );
        store.register_dataset("d", d);
        assert_eq!(store.dataset_shape("d"), Some((10, 3)));
        assert!(store.dataset_bytes("d").unwrap() > 0);
        let (artifact, cost) = store.load_dataset("d").unwrap();
        assert!(artifact.as_data().is_some());
        assert!(cost >= store.overhead);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_reads_warm_the_cache() {
        let dir = tmp("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let name = dataset_name("x");
        {
            let mut store = DiskArtifactStorage::open(&dir, 0).unwrap();
            store.put_artifact(name, &Artifact::Value(7.0));
        }
        let mut store = DiskArtifactStorage::open(&dir, 0).unwrap();
        assert!(store.cache.is_empty());
        let cold = store.raw(name).unwrap().unwrap();
        assert!(store.cache.contains_key(&name));
        let warm = store.raw(name).unwrap().unwrap();
        assert_eq!(cold, warm);
        store.clear_cache();
        assert!(store.cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
