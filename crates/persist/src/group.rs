//! Group commit: one fsync per commit group instead of one per submission.
//!
//! [`WalHook`](crate::WalHook) fsyncs every drained batch — correct, but
//! under concurrent serving traffic each tenant submission pays a full
//! `sync_data` even when dozens of commits land within the same
//! millisecond. [`GroupCommitWal`] splits the hook into two halves:
//!
//! - [`DurabilityHook::append`] only *buffers*: events drained inside the
//!   catalog write lock (commit order = epoch order) go into an in-memory
//!   pending queue, preserving that order. No IO, no fsync.
//! - [`GroupCommitWal::flush_group`] takes everything pending and hands it
//!   to the underlying [`WalWriter`] as **one** framed batch — one
//!   buffered `write_all`, one `sync_data`, regardless of how many
//!   submissions contributed.
//!
//! The serving layer calls `flush_group` at commit-group boundaries (every
//! `commit_group` epochs, and whenever the runtime drains idle), making
//! the epoch boundary the WAL linearization point.
//!
//! # Durability contract
//!
//! Events are crash-durable only after the `flush_group` covering them
//! returns `Ok`. A crash before that loses the *suffix* of buffered
//! events, never a middle slice: the pending queue is drained in order and
//! the WAL's CRC framing truncates torn tails at a record boundary, so
//! recovery always replays a clean prefix of the committed epochs — the
//! crash test in `tests/group_commit_crash.rs` cuts exactly at an epoch
//! boundary and mid-group to prove both.

use crate::wal::WalWriter;
use hyppo_core::durable::{DurabilityHook, DurableEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing how much fsync traffic group commit absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Hook deliveries buffered (one per draining commit).
    pub appends: u64,
    /// Individual events buffered across all deliveries.
    pub events: u64,
    /// `flush_group` calls that found work and paid one fsync each.
    pub fsyncs: u64,
}

#[derive(Debug)]
struct GroupInner {
    /// Buffered events in commit (epoch) order, not yet on disk.
    pending: Mutex<Vec<DurableEvent>>,
    /// The log itself. Locked only by `flush_group`, never while `pending`
    /// is held.
    writer: Mutex<WalWriter>,
    appends: AtomicU64,
    events: AtomicU64,
    fsyncs: AtomicU64,
}

/// A group-committing [`DurabilityHook`] over one [`WalWriter`].
///
/// Clonable handle: the serving runtime keeps one clone to flush on group
/// boundaries while the backend owns another as its attached hook.
#[derive(Clone, Debug)]
pub struct GroupCommitWal {
    inner: Arc<GroupInner>,
}

impl GroupCommitWal {
    /// Group-commit hook appending to `writer`.
    pub fn new(writer: WalWriter) -> Self {
        GroupCommitWal {
            inner: Arc::new(GroupInner {
                pending: Mutex::new(Vec::new()),
                writer: Mutex::new(writer),
                appends: AtomicU64::new(0),
                events: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
            }),
        }
    }

    /// Durably write everything buffered so far as one framed batch — one
    /// `write_all`, one `sync_data`. Returns how many events were flushed
    /// (zero when nothing was pending, in which case no IO happens).
    pub fn flush_group(&self) -> std::io::Result<usize> {
        // Take the batch first and release `pending` before touching the
        // writer: appends from concurrent commits never wait on the fsync,
        // they just land in the next group.
        let batch = std::mem::take(&mut *self.lock_pending());
        if batch.is_empty() {
            return Ok(0);
        }
        // hyppo-lint: allow(blocking-in-critical-section) group-commit flush:
        // the writer mutex is the WAL serialization point, and holding it
        // across append+fsync is what makes the epoch group durable as a unit
        let result = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner()).append(&batch);
        match result {
            Ok(()) => {
                // hyppo-lint: allow(relaxed-ordering-justified) monotonic stats
                // counter; readers only ever see it via `stats()` snapshots
                self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
                Ok(batch.len())
            }
            Err(e) => {
                // Put the batch back at the *front* so a retry preserves
                // commit order relative to events buffered meanwhile.
                let mut pending = self.lock_pending();
                let tail = std::mem::take(&mut *pending);
                *pending = batch;
                pending.extend(tail);
                Err(e)
            }
        }
    }

    /// Events buffered but not yet flushed.
    pub fn pending_events(&self) -> usize {
        self.lock_pending().len()
    }

    /// Fsync-absorption counters so far.
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            // hyppo-lint: allow(relaxed-ordering-justified) independent stats
            // gauges; a snapshot torn across concurrent flushes is acceptable
            appends: self.inner.appends.load(Ordering::Relaxed),
            // hyppo-lint: allow(relaxed-ordering-justified) stats gauge (see above)
            events: self.inner.events.load(Ordering::Relaxed),
            // hyppo-lint: allow(relaxed-ordering-justified) stats gauge (see above)
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// Flush any remaining events and return the underlying writer, if
    /// this is the last handle. Call after detaching the hook from the
    /// backend so no further appends can race.
    pub fn into_writer(self) -> std::io::Result<Result<WalWriter, Self>> {
        self.flush_group()?;
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(Ok(inner.writer.into_inner().unwrap_or_else(|e| e.into_inner()))),
            Err(inner) => Ok(Err(GroupCommitWal { inner })),
        }
    }

    fn lock_pending(&self) -> std::sync::MutexGuard<'_, Vec<DurableEvent>> {
        self.inner.pending.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl DurabilityHook for GroupCommitWal {
    fn append(&mut self, events: &[DurableEvent]) -> std::io::Result<()> {
        self.lock_pending().extend_from_slice(events);
        // hyppo-lint: allow(relaxed-ordering-justified) monotonic stats
        // counters; ordering relative to the buffer is irrelevant
        self.inner.appends.fetch_add(1, Ordering::Relaxed);
        // hyppo-lint: allow(relaxed-ordering-justified) stats counter (see above)
        self.inner.events.fetch_add(events.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::read_wal;
    use hyppo_pipeline::ArtifactName;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hyppo_group_{}_{}", name, std::process::id()))
    }

    fn events(range: std::ops::Range<u64>) -> Vec<DurableEvent> {
        range.map(|i| DurableEvent::Touch { name: ArtifactName(i) }).collect()
    }

    #[test]
    fn appends_buffer_and_flush_writes_one_group() {
        let path = tmp("buffer");
        let _ = std::fs::remove_file(&path);
        let (writer, _) = WalWriter::open(&path).unwrap();
        let mut hook = GroupCommitWal::new(writer);

        hook.append(&events(0..3)).unwrap();
        hook.append(&events(3..5)).unwrap();
        assert_eq!(hook.pending_events(), 5);
        assert!(read_wal(&path).unwrap().events.is_empty(), "nothing on disk before flush");

        assert_eq!(hook.flush_group().unwrap(), 5);
        assert_eq!(hook.pending_events(), 0);
        assert_eq!(read_wal(&path).unwrap().events, events(0..5), "order preserved");

        let stats = hook.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.events, 5);
        assert_eq!(stats.fsyncs, 1, "two submissions, one fsync");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_flush_is_free() {
        let path = tmp("empty");
        let _ = std::fs::remove_file(&path);
        let (writer, _) = WalWriter::open(&path).unwrap();
        let hook = GroupCommitWal::new(writer);
        assert_eq!(hook.flush_group().unwrap(), 0);
        assert_eq!(hook.stats().fsyncs, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unflushed_suffix_is_lost_flushed_prefix_survives() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let (writer, _) = WalWriter::open(&path).unwrap();
        let mut hook = GroupCommitWal::new(writer);

        hook.append(&events(0..4)).unwrap();
        hook.flush_group().unwrap();
        hook.append(&events(4..9)).unwrap();
        drop(hook); // crash: second group never flushed

        let back = read_wal(&path).unwrap();
        assert_eq!(back.events, events(0..4), "exactly the flushed prefix replays");
        assert_eq!(back.torn_bytes, 0, "group boundary is a clean record boundary");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_appends_during_flush_land_in_the_next_group() {
        let path = tmp("concurrent");
        let _ = std::fs::remove_file(&path);
        let (writer, _) = WalWriter::open(&path).unwrap();
        let hook = GroupCommitWal::new(writer);

        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let mut hook = hook.clone();
                scope.spawn(move || {
                    for i in 0..16 {
                        hook.append(&[DurableEvent::Touch { name: ArtifactName(t * 100 + i) }])
                            .unwrap();
                        if i % 5 == 0 {
                            hook.flush_group().unwrap();
                        }
                    }
                });
            }
        });
        hook.flush_group().unwrap();

        let back = read_wal(&path).unwrap();
        assert_eq!(back.events.len(), 64, "no event lost or duplicated");
        assert_eq!(hook.stats().events, 64);
        assert!(
            hook.stats().fsyncs <= 17,
            "at most one fsync per flush call, not per append: {:?}",
            hook.stats()
        );
        // Per-thread suborder is preserved (appends hold the pending lock).
        for t in 0..4u64 {
            let thread_events: Vec<u64> = back
                .events
                .iter()
                .filter_map(|e| match e {
                    DurableEvent::Touch { name } if name.0 / 100 == t => Some(name.0),
                    _ => None,
                })
                .collect();
            let mut sorted = thread_events.clone();
            sorted.sort_unstable();
            assert_eq!(thread_events, sorted, "thread {t} suborder broken");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn into_writer_flushes_the_tail() {
        let path = tmp("into");
        let _ = std::fs::remove_file(&path);
        let (writer, _) = WalWriter::open(&path).unwrap();
        let mut hook = GroupCommitWal::new(writer);
        hook.append(&events(0..3)).unwrap();
        let writer = hook.into_writer().unwrap().expect("sole handle unwraps");
        assert_eq!(read_wal(writer.path()).unwrap().events, events(0..3));
        let _ = std::fs::remove_file(&path);
    }
}
