//! [`DurableHyppo`]: a crash-recoverable [`Hyppo`] session.
//!
//! # Layout
//!
//! A durable session owns one directory:
//!
//! ```text
//! <dir>/snapshot.json   — last checkpoint (atomic write; may be absent)
//! <dir>/wal.log         — events since the checkpoint (see `wal`)
//! <dir>/artifacts/      — spilled payloads of materialized artifacts
//! ```
//!
//! # Recovery invariant
//!
//! [`DurableHyppo::open`] rebuilds the in-memory system as
//! `restore(snapshot)` + `replay(valid WAL prefix)` + payload
//! reconciliation, and DESIGN.md §12 argues this is *bit-identical* to the
//! state the crashed process had durably reached: events journal the calls
//! themselves, so replay re-runs the exact mutation sequence through the
//! same public APIs — same dense node/edge ids, same structure signatures,
//! same bounds-cache keys, same planner output bytes.
//!
//! The WAL is written *ahead* of the payload mirror, so a crash can leave
//! an artifact flagged materialized with no payload on disk. Recovery
//! resolves every such divergence toward the payload set: flags without
//! payloads are evicted (the history keeps the artifact and its
//! computational edges — only the load edge goes), payloads without flags
//! are deleted.

use crate::store::DiskArtifactStorage;
use crate::wal::{WalHook, WalWriter};
use bytes::Bytes;
use hyppo_core::durable::replay_events;
use hyppo_core::persist::{atomic_write, catalog_from_json, catalog_to_json};
use hyppo_core::system::{Hyppo, HyppoConfig, RunReport, SubmitError};
use hyppo_core::Session;
use hyppo_pipeline::{ArtifactName, PipelineSpec};
use hyppo_tensor::Dataset;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What [`DurableHyppo::open`] found and rebuilt.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Whether a checkpoint snapshot was restored.
    pub snapshot_loaded: bool,
    /// Valid WAL events replayed on top of the snapshot.
    pub replayed_events: usize,
    /// Bytes truncated off the WAL as a torn/corrupt tail.
    pub torn_bytes: u64,
    /// Materialized artifacts whose payloads were reloaded from disk.
    pub artifacts_loaded: usize,
    /// Artifacts flagged materialized whose payloads were missing or
    /// corrupt: their load edges were evicted during reconciliation.
    pub artifacts_dropped: Vec<ArtifactName>,
}

/// A [`Hyppo`] system whose history, statistics, and materialized payloads
/// survive crashes.
#[derive(Debug)]
pub struct DurableHyppo {
    system: Hyppo,
    dir: PathBuf,
    wal: Arc<Mutex<WalWriter>>,
    disk: DiskArtifactStorage,
}

impl DurableHyppo {
    /// Open a durable session at `dir`, recovering whatever a previous
    /// session (cleanly closed or crashed) left there. Raw datasets are
    /// not persisted — re-register them after opening.
    pub fn open(dir: &Path, config: HyppoConfig) -> std::io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let mut system = Hyppo::new(config);
        let mut report = RecoveryReport::default();

        let snap_path = dir.join("snapshot.json");
        match std::fs::read_to_string(&snap_path) {
            Ok(json) => {
                let (history, estimator) = catalog_from_json(&json).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                system.history = history;
                system.estimator = estimator;
                report.snapshot_loaded = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let (writer, contents) = WalWriter::open(&dir.join("wal.log"))?;
        replay_events(&contents.events, &mut system.history, &mut system.estimator);
        report.replayed_events = contents.events.len();
        report.torn_bytes = contents.torn_bytes;

        // Reconcile materialization flags against the payloads that
        // actually reached disk (in name order, deterministically).
        let mut disk = DiskArtifactStorage::open(&dir.join("artifacts"), 0)?;
        let mut flagged: Vec<ArtifactName> = system.history.materialized().collect();
        flagged.sort();
        for name in flagged {
            let payload = disk.raw(name)?.filter(|b| hyppo_core::codec::decode(b).is_ok());
            match payload {
                Some(bytes) => {
                    system.store.insert_raw(name, bytes);
                    report.artifacts_loaded += 1;
                }
                None => {
                    disk.remove_raw(name)?;
                    system.history.evict(name);
                    report.artifacts_dropped.push(name);
                }
            }
        }
        for name in disk.artifact_names().collect::<Vec<_>>() {
            if !system.store.contains(name) {
                disk.remove_raw(name)?;
            }
        }

        let wal = Arc::new(Mutex::new(writer));
        system.attach_durability(Box::new(WalHook::new(Arc::clone(&wal))));
        Ok((DurableHyppo { system, dir: dir.to_path_buf(), wal, disk }, report))
    }

    /// The wrapped system (histories, reports, configuration).
    pub fn system(&self) -> &Hyppo {
        &self.system
    }

    /// Mutable access to the wrapped system. Mutations through here are
    /// journaled like any other — the WAL hook stays attached.
    pub fn system_mut(&mut self) -> &mut Hyppo {
        &mut self.system
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The disk mirror of materialized payloads.
    pub fn disk(&self) -> &DiskArtifactStorage {
        &self.disk
    }

    /// Current WAL length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).len_bytes()
    }

    /// Canonical JSON of the current catalog (history + estimator) — the
    /// bit-identity witness the recovery tests compare.
    pub fn snapshot_json(&self) -> String {
        catalog_to_json(&self.system.history, &self.system.estimator)
    }

    /// Register a raw dataset. The registration event becomes durable with
    /// the next submission's flush (or an explicit [`DurableHyppo::checkpoint`]);
    /// datasets themselves are never persisted.
    pub fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        self.system.register_dataset(id, dataset);
    }

    /// Submit a pipeline; its events are fsynced to the WAL before this
    /// returns, then new payloads are mirrored to disk.
    pub fn submit(&mut self, spec: PipelineSpec) -> Result<RunReport, SubmitError> {
        let report = self.system.submit(spec)?;
        self.mirror().map_err(SubmitError::Durability)?;
        Ok(report)
    }

    /// Retrieve artifacts by name (paper Scenario 2), durably.
    pub fn retrieve(&mut self, names: &[ArtifactName]) -> Result<RunReport, SubmitError> {
        let report = self.system.retrieve(names)?;
        self.mirror().map_err(SubmitError::Durability)?;
        Ok(report)
    }

    /// Checkpoint: atomically write the snapshot, then truncate the WAL.
    /// Bounds recovery time — replay starts from here. Crash-safe at every
    /// step: before the snapshot rename commits, recovery replays the old
    /// snapshot + full WAL; after it, the WAL events are redundant with the
    /// snapshot (replaying both is idempotent) until the reset removes them.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.system.flush_durability()?;
        let json = catalog_to_json(&self.system.history, &self.system.estimator);
        atomic_write(&self.dir.join("snapshot.json"), json.as_bytes())?;
        // hyppo-lint: allow(blocking-in-critical-section) the WAL mutex must
        // pin the log across truncate+fsync so no append lands between the
        // durable snapshot and the reset
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).reset()
    }

    /// Mirror the in-memory store's payloads to the artifacts directory:
    /// write what appeared, delete what was evicted, refresh the gain
    /// statistics that rank disk eviction.
    fn mirror(&mut self) -> std::io::Result<()> {
        let mut live: Vec<(ArtifactName, Bytes)> =
            self.system.store.entries().map(|(n, b)| (n, b.clone())).collect();
        live.sort_by_key(|&(n, _)| n);
        for (name, bytes) in &live {
            if self.disk.artifact_size(*name) != Some(bytes.len() as u64) {
                self.disk.put_raw(*name, bytes)?;
            }
            let stats = self.system.history.stats_of(*name);
            self.disk.record_stats(*name, stats.freq, stats.compute_cost);
        }
        for name in self.disk.artifact_names().collect::<Vec<_>>() {
            if !self.system.store.contains(name) {
                self.disk.remove_raw(name)?;
            }
        }
        Ok(())
    }
}

impl Session for DurableHyppo {
    fn backend_name(&self) -> &'static str {
        "HYPPO-durable"
    }

    fn register_dataset(&mut self, id: &str, dataset: Dataset) {
        DurableHyppo::register_dataset(self, id, dataset);
    }

    fn submit(&mut self, spec: PipelineSpec) -> Result<RunReport, SubmitError> {
        DurableHyppo::submit(self, spec)
    }

    fn retrieve(&mut self, names: &[ArtifactName]) -> Result<RunReport, SubmitError> {
        DurableHyppo::retrieve(self, names)
    }

    fn cumulative_seconds(&self) -> f64 {
        self.system.cumulative_seconds
    }

    fn budget_bytes(&self) -> u64 {
        self.system.config.budget_bytes
    }

    fn history_artifacts(&self) -> usize {
        self.system.history.artifact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppo_ml::{Config, LogicalOp};
    use hyppo_tensor::{Matrix, SeededRng, TaskKind};

    fn dataset(n: usize) -> Dataset {
        let mut rng = SeededRng::new(3);
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::new();
        for r in 0..n {
            for c in 0..4 {
                x.set(r, c, rng.uniform(-1.0, 1.0));
            }
            y.push(if x.get(r, 0) + x.get(r, 1) > 0.0 { 1.0 } else { 0.0 });
        }
        Dataset::new(x, y, (0..4).map(|i| format!("f{i}")).collect(), TaskKind::Classification)
    }

    fn spec(seed: i64) -> PipelineSpec {
        let mut spec = PipelineSpec::new();
        let d = spec.load("data");
        let (train, test) = spec.split(d, Config::new().with_i("seed", seed));
        let scaler = spec.fit(LogicalOp::StandardScaler, 0, Config::new(), &[train]);
        let train_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, train);
        let test_s = spec.transform(LogicalOp::StandardScaler, 0, Config::new(), scaler, test);
        let model = spec.fit(LogicalOp::LinearSvm, 0, Config::new(), &[train_s]);
        let preds = spec.predict(LogicalOp::LinearSvm, 0, Config::new(), model, test_s);
        spec.evaluate(LogicalOp::Accuracy, preds, test_s);
        spec
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hyppo_durable_{}_{}", name, std::process::id()))
    }

    fn config() -> HyppoConfig {
        HyppoConfig { budget_bytes: 64 * 1024 * 1024, ..Default::default() }
    }

    #[test]
    fn reopen_recovers_bit_identical_state_and_enables_reuse() {
        let dir = tmp("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let (live_json, cold_seconds) = {
            let (mut session, report) = DurableHyppo::open(&dir, config()).unwrap();
            assert!(!report.snapshot_loaded);
            assert_eq!(report.replayed_events, 0);
            session.register_dataset("data", dataset(300));
            let cold = session.submit(spec(0)).unwrap();
            assert!(cold.execution_seconds > 0.0);
            (session.snapshot_json(), cold.execution_seconds)
        };

        let (mut session, report) = DurableHyppo::open(&dir, config()).unwrap();
        assert!(report.replayed_events > 0);
        assert_eq!(report.torn_bytes, 0);
        assert!(report.artifacts_dropped.is_empty());
        assert_eq!(session.snapshot_json(), live_json, "recovery must be bit-identical");
        session.register_dataset("data", dataset(300));
        let warm = session.submit(spec(0)).unwrap();
        assert!(warm.loads >= 1, "recovered payloads must be loadable");
        assert!(warm.execution_seconds < cold_seconds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_survivors_recovered() {
        let dir = tmp("torn");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut session, _) = DurableHyppo::open(&dir, config()).unwrap();
            session.register_dataset("data", dataset(200));
            session.submit(spec(0)).unwrap();
        }
        // Simulate a crash mid-append: garbage after the valid prefix.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(dir.join("wal.log")).unwrap();
        f.write_all(&[0x13, 0x37, 0x00]).unwrap();
        drop(f);

        let (session, report) = DurableHyppo::open(&dir, config()).unwrap();
        assert_eq!(report.torn_bytes, 3);
        assert!(report.replayed_events > 0);
        assert!(session.system().history.artifact_count() > 0);
        // The truncation is physical: a third open sees a clean log.
        drop(session);
        let (_, report) = DurableHyppo::open(&dir, config()).unwrap();
        assert_eq!(report.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovers_from_snapshot() {
        let dir = tmp("checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let live_json = {
            let (mut session, _) = DurableHyppo::open(&dir, config()).unwrap();
            session.register_dataset("data", dataset(200));
            session.submit(spec(0)).unwrap();
            let before = session.wal_len_bytes();
            session.checkpoint().unwrap();
            assert!(session.wal_len_bytes() < before, "checkpoint must shrink the WAL");
            session.submit(spec(1)).unwrap();
            session.snapshot_json()
        };
        let (session, report) = DurableHyppo::open(&dir, config()).unwrap();
        assert!(report.snapshot_loaded);
        assert!(report.replayed_events > 0, "post-checkpoint events replay on top");
        assert_eq!(session.snapshot_json(), live_json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_payload_is_reconciled_by_evicting_the_flag() {
        let dir = tmp("reconcile");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut session, _) = DurableHyppo::open(&dir, config()).unwrap();
            session.register_dataset("data", dataset(200));
            let report = session.submit(spec(0)).unwrap();
            assert!(report.stored > 0, "test needs materialized artifacts");
        }
        // Crash window: WAL says materialized, payload never reached disk.
        let artifacts = dir.join("artifacts");
        let mut removed = 0;
        for entry in std::fs::read_dir(&artifacts).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "art") {
                std::fs::remove_file(&path).unwrap();
                removed += 1;
                break;
            }
        }
        assert_eq!(removed, 1);

        let (session, report) = DurableHyppo::open(&dir, config()).unwrap();
        assert_eq!(report.artifacts_dropped.len(), 1);
        let dropped = report.artifacts_dropped[0];
        assert!(!session.system().history.is_materialized(dropped));
        assert!(session.system().history.contains(dropped), "only the load edge goes");
        // And the recovered state is internally consistent: resubmitting
        // recomputes the dropped artifact instead of trying to load it.
        let (mut session, _) = {
            drop(session);
            DurableHyppo::open(&dir, config()).unwrap()
        };
        session.register_dataset("data", dataset(200));
        session.submit(spec(0)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_session_implements_the_session_trait() {
        let dir = tmp("trait");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut session, _) = DurableHyppo::open(&dir, config()).unwrap();
        assert_eq!(Session::backend_name(&session), "HYPPO-durable");
        Session::register_dataset(&mut session, "data", dataset(200));
        let report = Session::submit(&mut session, spec(0)).unwrap();
        assert!(report.execution_seconds > 0.0);
        assert!(Session::cumulative_seconds(&session) > 0.0);
        assert_eq!(Session::budget_bytes(&session), 64 * 1024 * 1024);
        assert!(Session::history_artifacts(&session) > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
