//! Pins the `--json` schema (version 2) byte-for-byte against a golden
//! file. The golden is the lint's own output over the violating fixture
//! workspace `tests/fixtures/lock_cycle_ws`, so this locks down the field
//! set (`rule`, `rule_family`, `file`, `line`, `column`, `message`), the
//! top-level `summary` block, key ordering, and the witness-path message
//! rendering all at once. Regenerate deliberately with
//!
//! ```text
//! cargo run -p hyppo-lint --bin hyppo-lint -- --json \
//!   --root crates/lint/tests/fixtures/lock_cycle_ws \
//!   > crates/lint/tests/fixtures/lock_cycle_ws.golden.json
//! ```

use std::path::Path;

#[test]
fn json_output_matches_the_golden_file_byte_for_byte() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = hyppo_lint::lint_workspace(&fixtures.join("lock_cycle_ws")).unwrap();
    let rendered = hyppo_lint::render_json(&report);
    let golden = std::fs::read_to_string(fixtures.join("lock_cycle_ws.golden.json")).unwrap();
    assert_eq!(
        rendered, golden,
        "JSON schema drift: if intentional, bump `version` and regenerate \
         the golden file (see module docs)"
    );
}

/// Structural guarantees a byte-diff alone would bury: the consumer-facing
/// invariants CI's `jq`-free grep relies on.
#[test]
fn json_schema_invariants() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = hyppo_lint::lint_workspace(&fixtures.join("lock_cycle_ws")).unwrap();
    let json = hyppo_lint::render_json(&report);
    assert!(json.starts_with("{\"tool\":\"hyppo-lint\",\"version\":2,"));
    assert!(json.ends_with("}\n"), "single line terminated by a newline");
    assert_eq!(json.lines().count(), 1);
    assert!(json.contains("\"summary\":{\"findings_per_rule\":{"));
    assert!(json.contains("\"suppressions\":{\"total\":0,\"used\":0,\"unused\":0}"));

    // A clean tree still renders the full envelope.
    let clean = hyppo_lint::lint_workspace(&fixtures.join("lock_cycle_ws_ok")).unwrap();
    let json = hyppo_lint::render_json(&clean);
    assert!(json.contains("\"findings\":[],\"total\":0"));
    assert!(json.contains("\"findings_per_rule\":{}"));
}
