//! Interprocedural-pass integration tests over the fixture mini-workspaces
//! under `tests/fixtures/lock_cycle_ws{,_ok}`: three crates (`alpha`,
//! `beta`, `gamma`) with cross-module calls, a trait-method receiver
//! (`Tick::tick`), a deliberate three-lock cycle closed across all three
//! crates, and an fsync reachable under a guard only through a free-function
//! callee. The clean twin has identical call structure but releases every
//! guard before the cross-crate call.

use hyppo_lint::{lint_workspace, Report, BLOCKING_CRITICAL, LOCK_ORDER_CYCLE};
use std::path::Path;

fn lint_fixture_ws(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    lint_workspace(&root).unwrap()
}

#[test]
fn seeded_three_lock_cycle_is_reported_with_a_witness_path() {
    let report = lint_fixture_ws("lock_cycle_ws");
    let keyed: Vec<(&str, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.file.as_str(), f.line)).collect();
    assert_eq!(
        keyed,
        vec![
            (LOCK_ORDER_CYCLE, "crates/alpha/src/lib.rs", 20),
            (BLOCKING_CRITICAL, "crates/alpha/src/lib.rs", 33),
        ],
        "full report:\n{}",
        hyppo_lint::render_human(&report)
    );

    // One finding per cycle component, carrying the entire witness chain:
    // every lock in the ring and every hop of the path that closes it,
    // across all three crates.
    let cycle = &report.findings[0];
    for needle in
        ["Alpha::a", "Beta::b", "Alpha::entry", "Beta::step", "Gamma::deep", "Alpha::reenter"]
    {
        assert!(cycle.message.contains(needle), "cycle witness lacks {needle}: {}", cycle.message);
    }

    // The blocking call is reachable only through the callee: the finding
    // sits at the guarded call site and names both the callee and the
    // blocking primitive it reaches.
    let blocking = &report.findings[1];
    for needle in ["Alpha::persist", "Alpha::a", "flush_to_disk", "File::create"] {
        assert!(
            blocking.message.contains(needle),
            "blocking witness lacks {needle}: {}",
            blocking.message
        );
    }
}

#[test]
fn clean_twin_with_identical_call_structure_passes() {
    let report = lint_fixture_ws("lock_cycle_ws_ok");
    assert!(
        report.findings.is_empty(),
        "clean twin must be silent:\n{}",
        hyppo_lint::render_human(&report)
    );
}

#[test]
fn summary_counts_match_the_fixture_findings() {
    let report = lint_fixture_ws("lock_cycle_ws");
    assert_eq!(report.summary.findings_per_rule.get(LOCK_ORDER_CYCLE), Some(&1));
    assert_eq!(report.summary.findings_per_rule.get(BLOCKING_CRITICAL), Some(&1));
    assert_eq!(report.summary.suppressions_total, 0);
}
