//! End-to-end scans: the real workspace must be clean (the lint passes on
//! its own repo), every violating fixture must fail a scan when planted in
//! a scoped location, and the binary's exit codes must match.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Sweeping the workspace clean is part of the lint's contract: a scan of
/// this repository must produce zero findings.
#[test]
fn the_workspace_itself_is_clean() {
    let report = hyppo_lint::lint_workspace(&repo_root()).unwrap();
    assert!(
        report.findings.is_empty(),
        "workspace has lint violations:\n{}",
        hyppo_lint::render_human(&report)
    );
    assert_eq!(
        report.summary.suppressions_unused, 0,
        "every suppression in the workspace must still be earning its keep"
    );
}

/// Plant each violating fixture in a synthetic workspace at a path where
/// its rule applies; the scan must report it (and the binary exits 1).
#[test]
fn each_violating_fixture_fails_a_workspace_scan() {
    let bad = [
        "nondet_iteration_bad.rs",
        "wall_clock_bad.rs",
        "relaxed_bad.rs",
        "unsafe_bad.rs",
        "nested_lock_bad.rs",
        "deprecated_api_bad.rs",
        "allow_missing_reason.rs",
    ];
    for name in bad {
        let ws = synthetic_workspace(name);
        let report = hyppo_lint::lint_workspace(&ws).unwrap();
        assert!(!report.findings.is_empty(), "{name}: expected findings from a planted fixture");
    }
}

#[test]
fn binary_exit_codes_and_json_output() {
    let exe = env!("CARGO_BIN_EXE_hyppo-lint");

    let dirty = synthetic_workspace("relaxed_bad.rs");
    let out = Command::new(exe).args(["--json", "--root"]).arg(&dirty).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"rule\":\"relaxed-ordering-justified\""), "got: {json}");
    assert!(json.contains("\"total\":1"), "got: {json}");

    let clean = synthetic_workspace("relaxed_ok.rs");
    let out = Command::new(exe).arg("--root").arg(&clean).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");

    let out = Command::new(exe).arg("--nonsense").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "bad usage must exit 2");
}

/// A throwaway workspace containing just `fixture` at
/// `crates/core/src/optimizer/planted.rs` (in scope for every rule).
fn synthetic_workspace(fixture: &str) -> PathBuf {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_ws").join(fixture);
    let dir = base.join("crates/core/src/optimizer");
    fs::create_dir_all(&dir).unwrap();
    fs::write(base.join("Cargo.toml"), "[workspace]\n").unwrap();
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    fs::copy(src, dir.join("planted.rs")).unwrap();
    base
}
