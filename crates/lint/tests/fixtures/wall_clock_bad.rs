use std::time::Instant;

fn tie_break_seed() -> u128 {
    Instant::now().elapsed().as_nanos()
}
