use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(counter: &AtomicUsize) -> usize {
    // hyppo-lint: allow(relaxed-ordering-justified)
    counter.fetch_add(1, Ordering::Relaxed)
}
