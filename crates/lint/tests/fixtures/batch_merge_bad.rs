use std::collections::HashMap;

// Stage-tree merge emitting shared-prefix groups in hash-map order: the
// group order (and so the batch's plan order) would vary run to run.
fn emit_groups(tree: &HashMap<u64, Vec<usize>>) -> Vec<usize> {
    let mut reps = Vec::new();
    for (_, members) in tree.iter() {
        reps.push(members[0]);
    }
    reps
}
