use std::sync::Mutex;

fn drain(a: &Mutex<Vec<u64>>, b: &Mutex<Vec<u64>>) -> Vec<u64> {
    let mut out = Vec::new();
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    out.extend(ga.iter().copied());
    out.extend(gb.iter().copied());
    out
}
