use std::collections::{BTreeMap, HashMap};

fn stats(by_edge: &HashMap<u64, f64>) -> (usize, bool) {
    (by_edge.len(), by_edge.values().all(|v| *v >= 0.0))
}

fn canonical(by_edge: &HashMap<u64, f64>) -> BTreeMap<u64, f64> {
    by_edge.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}
