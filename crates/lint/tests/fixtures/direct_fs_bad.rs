use std::fs;

fn checkpoint(json: &str) -> std::io::Result<()> {
    fs::write("snapshot.json", json)
}
