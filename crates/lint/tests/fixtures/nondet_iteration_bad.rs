use std::collections::HashMap;

fn totals(by_edge: &HashMap<u64, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for (_, v) in by_edge.iter() {
        out.push(*v);
    }
    out
}
