use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(counter: &AtomicUsize) -> usize {
    // hyppo-lint: allow(relaxed-ordering-justified) metrics counter; the value
    // never feeds a plan decision
    counter.fetch_add(1, Ordering::Relaxed)
}

fn bump_strict(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::SeqCst)
}
