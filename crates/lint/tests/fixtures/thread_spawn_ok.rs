fn run_to_completion(sched: &hyppo_sched::Scheduler<u64>) {
    // Scoped workers come from the scheduler, which owns parking and
    // shutdown; no raw thread ever outlives this call.
    sched.run_scoped(|mut w| while w.next().is_some() {});
}

fn scoped_helpers(items: &[u64]) -> u64 {
    // `std::thread::scope` blocks until its threads finish, so scoped
    // spawns cannot leak a detached pool — the rule leaves them alone.
    std::thread::scope(|s| s.spawn(|| items.iter().sum()).join().unwrap())
}

fn bench_only_thread() {
    // hyppo-lint: allow(thread-spawn-outside-sched) bench harness needs one bare timer thread
    let t = std::thread::spawn(|| {});
    t.join().unwrap();
}
