// Deliberately violating fixture workspace (never scanned by real runs:
// the `fixtures` directory is on the walker's skip list). Seeds a
// three-lock cross-crate cycle Alpha::a -> Beta::b -> Gamma::c -> Alpha::a
// and an fsync reachable under a guard only through a callee.
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

pub struct Alpha {
    a: Mutex<Vec<u64>>,
    beta: Beta,
    log: PathBuf,
}

impl Alpha {
    /// Holds `Alpha::a` while calling into `Beta::step`.
    pub fn entry(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        self.beta.step() + ga.len() as u64
    }

    /// Closes the cycle: reached from `Gamma::deep` with `Gamma::c` held.
    pub fn reenter(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        ga.iter().sum()
    }

    /// Blocking reachable only through a callee: `flush_to_disk` creates
    /// and fsyncs a file while `Alpha::a` is still held here.
    pub fn persist(&self) -> std::io::Result<()> {
        let ga = self.a.lock().unwrap();
        flush_to_disk(&self.log, &ga)
    }
}

fn flush_to_disk(path: &Path, items: &[u64]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    for i in items {
        f.write_all(&i.to_le_bytes())?;
    }
    f.sync_all()
}
