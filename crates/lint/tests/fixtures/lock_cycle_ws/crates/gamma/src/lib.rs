use std::sync::Mutex;

pub struct Gamma {
    c: Mutex<Vec<u64>>,
    alpha: Alpha,
    ticker: Beta,
}

impl Gamma {
    /// Holds `Gamma::c` while calling back into `Alpha::reenter` —
    /// closing the Alpha::a -> Beta::b -> Gamma::c -> Alpha::a cycle.
    pub fn deep(&self) -> u64 {
        let gc = self.c.lock().unwrap();
        self.alpha.reenter() + gc.len() as u64
    }

    /// Trait-method receiver: resolves by name to `<Beta as Tick>::tick`.
    /// No guard is held here, so this adds call edges but no lock edges.
    pub fn maintain(&self) -> u64 {
        self.ticker.tick()
    }
}
