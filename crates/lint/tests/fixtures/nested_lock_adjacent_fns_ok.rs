// Regression: a guard must not be considered live across a function
// boundary. `first` and `second` each take ONE lock; before the
// fn-boundary reset in the nested-lock walker, `first`'s guard leaked
// into `second` and flagged its single acquisition as nested.
use std::sync::Mutex;

fn first(a: &Mutex<Vec<u64>>) -> usize {
    let ga = a.lock().unwrap();
    ga.len()
}

fn second(b: &Mutex<Vec<u64>>) -> usize {
    let gb = b.lock().unwrap();
    gb.len()
}
