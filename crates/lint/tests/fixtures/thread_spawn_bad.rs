use std::thread;

fn start_pool(n: usize) -> Vec<thread::JoinHandle<()>> {
    (0..n).map(|_| thread::spawn(|| {})).collect()
}

fn start_named() -> std::io::Result<thread::JoinHandle<()>> {
    thread::Builder::new().name("rogue".into()).spawn(|| {})
}
