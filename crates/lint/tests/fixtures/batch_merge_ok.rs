use std::collections::{BTreeMap, HashMap};

// Stage-tree merge done deterministically: membership is consulted only by
// keyed lookup, and group emission canonicalizes through a BTreeMap so the
// order is the sorted group-key order regardless of hash seeding.
fn shared_base(membership: &HashMap<u64, usize>, states: &[u64]) -> Option<u64> {
    states.iter().rev().find(|s| membership.get(s).copied().unwrap_or(0) >= 2).copied()
}

fn emit_groups(tree: &HashMap<u64, Vec<usize>>) -> Vec<usize> {
    tree.iter().map(|(k, m)| (*k, m[0])).collect::<BTreeMap<_, _>>().into_values().collect()
}
