fn head(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}
