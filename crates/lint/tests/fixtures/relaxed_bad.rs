use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}
