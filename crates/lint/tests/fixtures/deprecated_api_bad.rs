fn plan_with_old_api() {
    let opts = SearchOptions::default();
    let _ = optimize(&graph, &costs, source, &targets, &[], opts);
}
