fn checkpoint(json: &str) -> std::io::Result<()> {
    // Routed through the atomic-write primitive, as the rule demands.
    crate::persist::atomic_write(std::path::Path::new("snapshot.json"), json.as_bytes())?;
    // hyppo-lint: allow(direct-fs-write-outside-persist) cache file carries no recoverable state
    std::fs::remove_file("scratch.tmp")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_scribble_in_temp_dirs() {
        std::fs::write("/tmp/scratch", b"x").unwrap();
    }
}
