fn plan_with_builder() {
    let _ = Planner::exact().queue(QueueKind::Priority).plan(&graph, req);
    let _normalized = self.expr_optimizer.optimize(input);
}
