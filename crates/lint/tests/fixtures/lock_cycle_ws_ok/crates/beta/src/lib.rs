use std::sync::Mutex;

/// Periodic maintenance hook, implemented by `Beta`, so the call graph
/// has a trait-method receiver to resolve.
pub trait Tick {
    fn tick(&self) -> u64;
}

pub struct Beta {
    b: Mutex<Vec<u64>>,
    gamma: Gamma,
}

impl Beta {
    /// Releases `Beta::b` before calling into `Gamma::deep`.
    pub fn step(&self) -> u64 {
        let n = {
            let gb = self.b.lock().unwrap();
            gb.len() as u64
        };
        self.gamma.deep() + n
    }
}

impl Tick for Beta {
    fn tick(&self) -> u64 {
        self.step()
    }
}
