use std::sync::Mutex;

pub struct Gamma {
    c: Mutex<Vec<u64>>,
    alpha: Alpha,
    ticker: Beta,
}

impl Gamma {
    /// Releases `Gamma::c` before calling back into `Alpha::reenter`, so
    /// no cycle edge Gamma::c -> Alpha::a exists here.
    pub fn deep(&self) -> u64 {
        let n = {
            let gc = self.c.lock().unwrap();
            gc.len() as u64
        };
        self.alpha.reenter() + n
    }

    /// Trait-method receiver: resolves by name to `<Beta as Tick>::tick`.
    pub fn maintain(&self) -> u64 {
        self.ticker.tick()
    }
}
