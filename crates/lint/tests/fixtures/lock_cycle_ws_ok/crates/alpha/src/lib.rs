// Clean twin of `lock_cycle_ws`: same call structure, but every guard is
// released (scope ends) before the cross-crate call, so the lock graph is
// edge-free and the fsync happens with nothing held.
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

pub struct Alpha {
    a: Mutex<Vec<u64>>,
    beta: Beta,
    log: PathBuf,
}

impl Alpha {
    /// Releases `Alpha::a` before calling into `Beta::step`.
    pub fn entry(&self) -> u64 {
        let n = {
            let ga = self.a.lock().unwrap();
            ga.len() as u64
        };
        self.beta.step() + n
    }

    /// Single acquisition; reached from `Gamma::deep` with nothing held.
    pub fn reenter(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        ga.iter().sum()
    }

    /// The snapshot is cloned out under the guard; the IO happens after.
    pub fn persist(&self) -> std::io::Result<()> {
        let items = {
            let ga = self.a.lock().unwrap();
            ga.clone()
        };
        flush_to_disk(&self.log, &items)
    }
}

fn flush_to_disk(path: &Path, items: &[u64]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    for i in items {
        f.write_all(&i.to_le_bytes())?;
    }
    f.sync_all()
}
