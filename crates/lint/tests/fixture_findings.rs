//! Fixture-based rule tests: every rule has one violating and one clean
//! snippet under `tests/fixtures/`, and each violating snippet must produce
//! exactly the expected `(rule, line)` findings — no more, no fewer. The
//! fixtures are linted under a virtual path inside the planner scope
//! (`crates/core/src/optimizer/`), where every rule applies.
//!
//! The `fixtures/` directory name is on the workspace walker's skip list,
//! so these deliberately-violating snippets never fail a real scan.

use hyppo_lint::{
    lint_source, DEPRECATED_API, DIRECT_FS_WRITE, MALFORMED_ALLOW, NESTED_LOCK, NONDET_ITERATION,
    RELAXED_ORDERING, THREAD_SPAWN, UNSAFE_COMMENT, WALL_CLOCK,
};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Lint a fixture as if it lived in the planner, where every rule applies.
fn lint_fixture(name: &str) -> Vec<(&'static str, usize)> {
    let text = fs::read_to_string(fixture_path(name)).unwrap();
    lint_source(&format!("crates/core/src/optimizer/{name}"), &text)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn nondet_iteration_fixture_pair() {
    assert_eq!(lint_fixture("nondet_iteration_bad.rs"), vec![(NONDET_ITERATION, 5)]);
    assert_eq!(lint_fixture("nondet_iteration_ok.rs"), vec![]);
}

/// The batch planner's stage-tree merge (`optimizer/batch.rs`) collects
/// groups into hash-keyed membership maps; this pair pins the rule that
/// guards its emission order against hash-seed nondeterminism.
#[test]
fn batch_merge_fixture_pair() {
    assert_eq!(lint_fixture("batch_merge_bad.rs"), vec![(NONDET_ITERATION, 7)]);
    assert_eq!(lint_fixture("batch_merge_ok.rs"), vec![]);
}

#[test]
fn wall_clock_fixture_pair() {
    assert_eq!(lint_fixture("wall_clock_bad.rs"), vec![(WALL_CLOCK, 4)]);
    assert_eq!(lint_fixture("wall_clock_ok.rs"), vec![]);
}

#[test]
fn relaxed_ordering_fixture_pair() {
    assert_eq!(lint_fixture("relaxed_bad.rs"), vec![(RELAXED_ORDERING, 4)]);
    assert_eq!(lint_fixture("relaxed_ok.rs"), vec![]);
}

#[test]
fn unsafe_comment_fixture_pair() {
    assert_eq!(lint_fixture("unsafe_bad.rs"), vec![(UNSAFE_COMMENT, 2)]);
    assert_eq!(lint_fixture("unsafe_ok.rs"), vec![]);
}

#[test]
fn nested_lock_fixture_pair() {
    assert_eq!(lint_fixture("nested_lock_bad.rs"), vec![(NESTED_LOCK, 6)]);
    assert_eq!(lint_fixture("nested_lock_ok.rs"), vec![]);
}

/// Regression: guard liveness resets at function boundaries. Two adjacent
/// functions each taking one lock are NOT a nested acquisition.
#[test]
fn nested_lock_does_not_leak_across_function_boundaries() {
    assert_eq!(lint_fixture("nested_lock_adjacent_fns_ok.rs"), vec![]);
}

#[test]
fn deprecated_api_fixture_pair() {
    assert_eq!(
        lint_fixture("deprecated_api_bad.rs"),
        vec![(DEPRECATED_API, 2), (DEPRECATED_API, 3)]
    );
    assert_eq!(lint_fixture("deprecated_api_ok.rs"), vec![]);
}

/// The clean fixture routes its snapshot through `atomic_write`, justifies
/// a non-recoverable scratch-file delete with an annotation, and confines
/// raw writes to `#[cfg(test)]` code — all three escapes must hold.
#[test]
fn direct_fs_write_fixture_pair() {
    assert_eq!(lint_fixture("direct_fs_bad.rs"), vec![(DIRECT_FS_WRITE, 4)]);
    assert_eq!(lint_fixture("direct_fs_ok.rs"), vec![]);
}

/// The durability rule scopes to `core`/`runtime`: the persist crate *is*
/// the sanctioned write path, and bench code owns its own output files.
#[test]
fn direct_fs_write_stays_out_of_the_persist_crate() {
    let text = fs::read_to_string(fixture_path("direct_fs_bad.rs")).unwrap();
    assert!(lint_source("crates/persist/src/x.rs", &text).is_empty());
    assert!(lint_source("crates/bench/src/x.rs", &text).is_empty());
}

/// The clean fixture exercises all three sanctioned escapes: pools built
/// from `hyppo-sched`, `std::thread::scope` (which cannot leak a detached
/// thread), and an annotated bench-only bare thread.
#[test]
fn thread_spawn_fixture_pair() {
    assert_eq!(lint_fixture("thread_spawn_bad.rs"), vec![(THREAD_SPAWN, 4), (THREAD_SPAWN, 8)]);
    assert_eq!(lint_fixture("thread_spawn_ok.rs"), vec![]);
}

/// The scheduler crate is the one place raw thread creation is legal: the
/// same violating fixture is clean when it lives under `crates/sched/`.
#[test]
fn thread_spawn_is_legal_inside_the_sched_crate() {
    let text = fs::read_to_string(fixture_path("thread_spawn_bad.rs")).unwrap();
    assert!(lint_source("crates/sched/src/pool.rs", &text).is_empty());
}

/// An `allow(...)` with no reason is itself a violation — and the broken
/// suppression must NOT take effect, so the underlying finding fires too.
#[test]
fn allow_without_reason_is_a_violation_and_does_not_suppress() {
    assert_eq!(
        lint_fixture("allow_missing_reason.rs"),
        vec![(MALFORMED_ALLOW, 4), (RELAXED_ORDERING, 5)]
    );
}

/// The deprecated-API rule is global: it fires even outside the scoped
/// determinism/concurrency directories.
#[test]
fn deprecated_api_fires_outside_scoped_dirs() {
    let text = fs::read_to_string(fixture_path("deprecated_api_bad.rs")).unwrap();
    let findings = lint_source("crates/workloads/src/x.rs", &text);
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == DEPRECATED_API));
}

/// Scoped rules do NOT fire outside their directories: the wall-clock
/// fixture is fine in bench code.
#[test]
fn scoped_rules_stay_scoped() {
    let text = fs::read_to_string(fixture_path("wall_clock_bad.rs")).unwrap();
    assert!(lint_source("crates/bench/src/x.rs", &text).is_empty());
}
