//! The lightweight program model behind the interprocedural passes.
//!
//! [`file_models`] parses one file's blanked [`Line`]s into [`FnModel`]s: per
//! function, the ordered list of [`Event`]s the concurrency rules care about —
//! lock-guard acquisitions by lock *identity* (`self.catalog.write()` inside
//! `impl SharedHyppo` becomes `SharedHyppo::catalog`), calls with a receiver
//! classification for name resolution, and known blocking operations
//! (`sync_all`, `write_all`, `File::create`, `Condvar::wait`, `recv`, `join`,
//! `sleep`). Every event carries the set of lock identities statically held at
//! that point, tracked by a brace-depth-aware guard-liveness walk: a let-bound
//! acquire whose trailing chain is only guard-preserving adapters (`unwrap`,
//! `expect`, `unwrap_or_else`) stays live until its block closes or `drop(g)`;
//! anything else (`.clone()`, `.take()`, a call chained onto the guard) is a
//! temporary held only for the rest of its statement.
//!
//! This is a heuristic model, not a compiler: names are resolved textually,
//! generics are never instantiated, and closures inherit their enclosing
//! function's guards (see `DESIGN.md` §15 for the soundness caveats). The
//! model errs toward *flagging*, and every finding site can carry a justified
//! suppression — the audit trail the rules exist to create.

use crate::scan::{is_word_char, word_occurrences, Line};

/// One function (or method) definition in the workspace.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Bare function name (no path).
    pub name: String,
    /// Enclosing `impl`/`trait` type, if this is a method.
    pub self_ty: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` item.
    pub line: usize,
    /// Ordered events extracted from the body.
    pub events: Vec<Event>,
    /// Lock identity this function acquires and returns as a live guard
    /// (`fn lock_sched(&self) -> MutexGuard<..>` helpers).
    pub returns_guard: Option<String>,
}

impl FnModel {
    /// `Type::name` or bare `name` — for witness paths in messages.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One model-relevant site inside a function body.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based column (within the blanked code model).
    pub col: usize,
    /// Lock identities statically held when this event runs (sorted, deduped).
    pub held: Vec<String>,
}

/// Event classification.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A lock/read/write guard acquisition of `lock`.
    Acquire {
        /// Normalized lock identity.
        lock: String,
    },
    /// A call that may resolve to a workspace function.
    Call {
        /// Bare callee name.
        name: String,
        /// Receiver classification used by the resolver.
        recv: Recv,
    },
    /// A known blocking operation.
    Block {
        /// Human-readable operation name (`sync_all`, `recv`, ...).
        what: &'static str,
    },
}

/// Receiver classification for call resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(...)` — resolve within the enclosing impl type.
    SelfDot,
    /// `Type::name(...)` — resolve against that type's methods/associated fns.
    Path(String),
    /// `expr.name(...)` with an unknown receiver — resolve against every
    /// workspace method of that name.
    Expr,
    /// `name(...)` — resolve against free functions.
    Free,
}

/// A guard-returning helper (`fn lock_sched(&self) -> MutexGuard<..>`):
/// calling it is an acquisition of `lock` at the call site.
#[derive(Debug, Clone)]
pub struct GuardHelper {
    /// Helper function name.
    pub name: String,
    /// Enclosing impl type, if a method.
    pub self_ty: Option<String>,
    /// The lock identity the helper acquires.
    pub lock: String,
}

/// Build the guard-helper table for a set of already-built models: any
/// function whose signature mentions a guard return type and whose body's
/// first event is an acquisition.
pub fn guard_helpers(models: &[FnModel]) -> Vec<GuardHelper> {
    let mut out = Vec::new();
    for m in models {
        if let Some(lock) = &m.returns_guard {
            if !lock.is_empty() {
                out.push(GuardHelper {
                    name: m.name.clone(),
                    self_ty: m.self_ty.clone(),
                    lock: lock.clone(),
                });
            }
        }
    }
    out
}

/// Blocking-call patterns over a statement's glued text. `(needle,
/// empty_args_only, label)`: when `empty_args_only` the pattern only counts
/// with a bare `()` (so `handle.join()` flags but `path.join("x")` does not).
const BLOCKING: &[(&str, bool, &str)] = &[
    (".sync_all(", false, "sync_all"),
    (".sync_data(", false, "sync_data"),
    (".write_all(", false, "write_all"),
    ("fs::write(", false, "fs::write"),
    ("File::create(", false, "File::create"),
    (".recv(", true, "recv"),
    (".recv_timeout(", false, "recv_timeout"),
    (".join(", true, "join"),
    ("::sleep(", false, "sleep"),
];

/// Guard-preserving adapters: a chain of only these after an acquire still
/// yields the guard itself, so a let binding keeps the lock held.
const GUARD_ADAPTERS: &[&str] = &[".unwrap()", ".expect(", ".unwrap_or_else("];

/// Rust keywords that look like calls (`if (..)`, `while (..)`, ...).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "move", "in", "as",
    "break", "continue", "unsafe", "where", "impl", "dyn", "ref", "mut", "pub", "use", "type",
];

/// Parse one file into function models. `helpers` is the guard-helper table
/// from a first pass (pass `&[]` for that first pass). Scanning stops at the
/// first `#[cfg(test)]` line: test code holds no production lock invariants.
pub fn file_models(rel_path: &str, lines: &[Line], helpers: &[GuardHelper]) -> Vec<FnModel> {
    Builder::new(rel_path, helpers).run(lines)
}

/// Whether interprocedural passes model this path: library sources only
/// (`src/` and `crates/*/src/`), never tests, benches, or examples.
pub fn in_model_scope(rel_path: &str) -> bool {
    if rel_path.starts_with("src/") {
        return true;
    }
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail.starts_with("src/");
        }
    }
    false
}

// ---------------------------------------------------------------------------
// statement walker
// ---------------------------------------------------------------------------

/// A live lock guard inside the current function.
#[derive(Debug)]
struct LiveGuard {
    var: Option<String>,
    lock: String,
    /// Brace depth of the guard's scope; retired when depth drops below.
    depth: i32,
}

enum Ctx {
    /// Plain block (loop body, closure, module, ...): events keep flowing to
    /// the innermost enclosing function.
    Block,
    /// `impl Type` / `trait Name` block: methods inside get this self type.
    Impl(Option<String>),
    /// A function body; index into the output models.
    Fn(usize),
}

struct OpenCtx {
    ctx: Ctx,
    /// Depth after this context's opening brace.
    depth: i32,
}

struct Builder<'a> {
    rel_path: &'a str,
    helpers: &'a [GuardHelper],
    depth: i32,
    stack: Vec<OpenCtx>,
    /// Guard sets parallel to the `Ctx::Fn` entries in `stack`.
    guard_stacks: Vec<Vec<LiveGuard>>,
    out: Vec<FnModel>,
}

/// One statement: text glued across lines (rustfmt-style leading-`.` chain
/// continuations concatenate seamlessly) plus a byte → (line, col) map.
struct Stmt {
    text: String,
    /// `(1-based line, 1-based col)` per byte of `text`; `(0, 0)` for glue.
    pos: Vec<(usize, usize)>,
}

impl Stmt {
    fn at(&self, byte: usize) -> (usize, usize) {
        self.pos
            .get(byte)
            .copied()
            .filter(|&p| p != (0, 0))
            .unwrap_or_else(|| self.pos.iter().copied().find(|&p| p != (0, 0)).unwrap_or((1, 1)))
    }
}

impl<'a> Builder<'a> {
    fn new(rel_path: &'a str, helpers: &'a [GuardHelper]) -> Self {
        Builder {
            rel_path,
            helpers,
            depth: 0,
            stack: Vec::new(),
            guard_stacks: Vec::new(),
            out: Vec::new(),
        }
    }

    fn run(mut self, lines: &[Line]) -> Vec<FnModel> {
        let mut stmt = Stmt { text: String::new(), pos: Vec::new() };
        'outer: for (idx, line) in lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                break 'outer;
            }
            let trimmed_start = line.code.len() - line.code.trim_start().len();
            // Glue chain continuations (`.method()`) directly; otherwise
            // separate lines with one space so keywords never fuse.
            let first = line.code.trim_start().chars().next();
            if !stmt.text.is_empty() && !matches!(first, Some('.' | ')' | ']' | '?')) {
                stmt.text.push(' ');
                stmt.pos.push((0, 0));
            }
            for (ci, c) in line.code.chars().enumerate() {
                if ci < trimmed_start && c.is_whitespace() {
                    continue;
                }
                match c {
                    '{' | '}' | ';' => {
                        self.end_stmt(&stmt, idx + 1, c);
                        stmt.text.clear();
                        stmt.pos.clear();
                    }
                    _ => {
                        stmt.text.push(c);
                        for _ in 0..c.len_utf8() {
                            stmt.pos.push((idx + 1, ci + 1));
                        }
                    }
                }
            }
        }
        self.out
    }

    /// Innermost enclosing function context, if any.
    fn fn_ctx(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|o| match o.ctx {
            Ctx::Fn(i) => Some(i),
            _ => None,
        })
    }

    fn enclosing_self_ty(&self) -> Option<String> {
        self.stack.iter().rev().find_map(|o| match &o.ctx {
            Ctx::Impl(t) => t.clone(),
            _ => None,
        })
    }

    fn end_stmt(&mut self, stmt: &Stmt, line_no: usize, term: char) {
        let text = stmt.text.trim();
        if term == '{' {
            // Classify the new context before processing events: `fn`/`impl`
            // headers carry no events. The `fn` check comes first — a
            // signature may mention `impl Trait` in argument position
            // (`fn commit<R>(.., f: impl FnOnce(..) -> R)`), but an
            // `impl`/`trait` header never contains the word `fn`.
            if let Some(name) = fn_item_name(&stmt.text) {
                let self_ty = self.enclosing_self_ty();
                let returns_guard_hint =
                    stmt.text.split_once("->").is_some_and(|(_, ret)| ret.contains("Guard"));
                self.out.push(FnModel {
                    name,
                    self_ty,
                    file: self.rel_path.to_string(),
                    line: first_line(stmt, line_no),
                    events: Vec::new(),
                    returns_guard: returns_guard_hint.then_some(String::new()),
                });
                self.depth += 1;
                self.stack.push(OpenCtx { ctx: Ctx::Fn(self.out.len() - 1), depth: self.depth });
                self.guard_stacks.push(Vec::new());
                return;
            }
            if !word_occurrences(&stmt.text, "impl").is_empty()
                || !word_occurrences(&stmt.text, "trait").is_empty()
            {
                self.depth += 1;
                self.stack.push(OpenCtx { ctx: Ctx::Impl(impl_type(text)), depth: self.depth });
                return;
            }
        }
        if self.fn_ctx().is_some() && !text.is_empty() {
            self.process(stmt, line_no, term);
        }
        match term {
            '{' => {
                self.depth += 1;
                self.stack.push(OpenCtx { ctx: Ctx::Block, depth: self.depth });
            }
            '}' => {
                self.depth -= 1;
                while self.stack.last().is_some_and(|o| o.depth > self.depth) {
                    if matches!(self.stack.pop().map(|o| o.ctx), Some(Ctx::Fn(_))) {
                        self.guard_stacks.pop();
                    }
                }
                if let Some(guards) = self.guard_stacks.last_mut() {
                    guards.retain(|g| g.depth <= self.depth);
                }
            }
            _ => {}
        }
    }

    /// Extract events from one statement inside a function.
    fn process(&mut self, stmt: &Stmt, line_no: usize, term: char) {
        let fn_idx = self.fn_ctx().expect("checked by caller");
        let occs = self.occurrences(stmt, fn_idx);
        let binding = binding_name(&stmt.text);
        let mut stmt_locks: Vec<String> = Vec::new();
        let mut first_acquire: Option<(String, usize)> = None;
        let mut acquire_count = 0usize;

        for occ in &occs {
            let held = self.held_set(&stmt_locks);
            let (line, col) = stmt.at(occ.pos);
            let line = if line == 0 { line_no } else { line };
            match &occ.kind {
                Occ::Acquire { lock, end } => {
                    acquire_count += 1;
                    if first_acquire.is_none() {
                        first_acquire = Some((lock.clone(), *end));
                    }
                    self.push_event(
                        fn_idx,
                        EventKind::Acquire { lock: lock.clone() },
                        line,
                        col,
                        held,
                    );
                    stmt_locks.push(lock.clone());
                }
                Occ::Call { name, recv } => {
                    self.push_event(
                        fn_idx,
                        EventKind::Call { name: name.clone(), recv: recv.clone() },
                        line,
                        col,
                        held,
                    );
                }
                Occ::Block { what } => {
                    self.push_event(fn_idx, EventKind::Block { what }, line, col, held);
                }
                Occ::Wait { guard_var } => {
                    // Condvar wait releases the guard passed to it: exempt
                    // that lock, flag only if anything else is still held.
                    let mut held = held;
                    if let Some(var) = guard_var {
                        if let Some(guards) = self.guard_stacks.last() {
                            if let Some(g) =
                                guards.iter().find(|g| g.var.as_deref() == Some(var.as_str()))
                            {
                                held.retain(|l| *l != g.lock);
                            }
                        }
                    }
                    self.push_event(
                        fn_idx,
                        EventKind::Block { what: "Condvar::wait" },
                        line,
                        col,
                        held,
                    );
                }
                Occ::Drop { var } => {
                    if let Some(guards) = self.guard_stacks.last_mut() {
                        guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                    }
                }
            }
        }

        // Guard liveness: a single acquire whose trailing chain is only
        // guard-preserving adapters, bound by `let`/assignment or a
        // scrutinee block, stays held past the statement.
        if acquire_count == 1 {
            let (lock, end) = first_acquire.clone().expect("count == 1");
            let scrutinee = term == '{';
            let kept = guard_preserving_tail(&stmt.text[end..], scrutinee);
            if kept {
                let var = binding
                    .clone()
                    .or_else(|| scrutinee.then(|| pattern_binding(&stmt.text)).flatten());
                if binding.is_some() || scrutinee {
                    let depth = if term == '{' { self.depth + 1 } else { self.depth };
                    if let Some(guards) = self.guard_stacks.last_mut() {
                        // Rebinding a name replaces its previous guard.
                        if let Some(v) = &var {
                            guards.retain(|g| g.var.as_deref() != Some(v.as_str()));
                        }
                        guards.push(LiveGuard { var, lock, depth });
                    }
                }
            }
        }

        // Record whether this function is a guard-returning helper: its
        // last statement is a bare acquisition expression (no `;`).
        if term == '}' && acquire_count == 1 && binding.is_none() {
            if let Some((lock, end)) = first_acquire {
                if guard_preserving_tail(&stmt.text[end..], false) {
                    if let Some(m) = self.out.get_mut(fn_idx) {
                        if matches!(&m.returns_guard, Some(s) if s.is_empty()) {
                            m.returns_guard = Some(lock);
                        }
                    }
                }
            }
        }
    }

    fn push_event(
        &mut self,
        fn_idx: usize,
        kind: EventKind,
        line: usize,
        col: usize,
        held: Vec<String>,
    ) {
        if let Some(m) = self.out.get_mut(fn_idx) {
            m.events.push(Event { kind, line, col, held });
        }
    }

    /// Locks held right now: live guards plus same-statement acquisitions.
    fn held_set(&self, stmt_locks: &[String]) -> Vec<String> {
        let mut held: Vec<String> = self
            .guard_stacks
            .last()
            .map(|gs| gs.iter().map(|g| g.lock.clone()).collect())
            .unwrap_or_default();
        held.extend(stmt_locks.iter().cloned());
        held.sort();
        held.dedup();
        held
    }

    /// All pattern occurrences in the statement, sorted by position.
    fn occurrences(&self, stmt: &Stmt, fn_idx: usize) -> Vec<PosOcc> {
        let text = &stmt.text;
        let mut occs: Vec<PosOcc> = Vec::new();
        let mut claimed: Vec<(usize, usize)> = Vec::new(); // byte ranges taken

        // 1. Direct acquisitions: `.lock()`, `.read()`, `.write()`.
        for pat in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(rel) = text[from..].find(pat) {
                let pos = from + rel;
                let recv = receiver_chain(text, pos);
                let lock = self.lock_id(&recv, fn_idx, stmt, pos);
                occs.push(PosOcc { pos, kind: Occ::Acquire { lock, end: pos + pat.len() } });
                claimed.push((pos, pos + pat.len()));
                from = pos + pat.len();
            }
        }

        // 2. Guard-returning helper calls: `self.lock_sched()` etc.
        for h in self.helpers {
            let needle = format!("{}()", h.name);
            for p in word_occurrences(text, &h.name) {
                if !text[p..].starts_with(&needle) {
                    continue;
                }
                let is_method = text[..p].ends_with('.');
                let recv = if is_method { receiver_chain(text, p - 1) } else { String::new() };
                // A `self.helper()` call only matches a helper of the
                // enclosing type; any other receiver could be of the
                // helper's type, so it matches (over-approximation).
                let matches_ty = match (&h.self_ty, is_method) {
                    (Some(_), true) => recv != "self" || h.self_ty == self.out[fn_idx].self_ty,
                    (None, false) => true,
                    _ => false,
                };
                if !matches_ty {
                    continue;
                }
                occs.push(PosOcc {
                    pos: p,
                    kind: Occ::Acquire { lock: h.lock.clone(), end: p + needle.len() },
                });
                claimed.push((p, p + needle.len()));
            }
        }

        // 3. Blocking operations.
        for (pat, empty_only, label) in BLOCKING {
            let mut from = 0;
            while let Some(rel) = text[from..].find(pat) {
                let pos = from + rel;
                let after = &text[pos + pat.len()..];
                let effective = !empty_only || after.starts_with(')');
                if effective {
                    occs.push(PosOcc { pos, kind: Occ::Block { what: label } });
                    claimed.push((pos, pos + pat.len()));
                }
                from = pos + pat.len();
            }
        }

        // 4. Condvar-style waits: `.wait(g)` / `.wait_timeout(g, ..)` release
        //    their own guard; `.wait()` with no argument is a plain block.
        for pat in [".wait(", ".wait_timeout(", ".wait_while("] {
            let mut from = 0;
            while let Some(rel) = text[from..].find(pat) {
                let pos = from + rel;
                let arg: String =
                    text[pos + pat.len()..].chars().take_while(|&c| is_word_char(c)).collect();
                let kind = if arg.is_empty() && text[pos + pat.len()..].starts_with(')') {
                    Occ::Block { what: "wait" }
                } else {
                    Occ::Wait { guard_var: (!arg.is_empty()).then_some(arg) }
                };
                occs.push(PosOcc { pos, kind });
                claimed.push((pos, pos + pat.len()));
                from = pos + pat.len();
            }
        }

        // 5. `drop(g)` releases.
        for p in word_occurrences(text, "drop") {
            if let Some(rest) = text[p + 4..].strip_prefix('(') {
                let var: String =
                    rest.trim_start().chars().take_while(|&c| is_word_char(c)).collect();
                if !var.is_empty() {
                    occs.push(PosOcc { pos: p, kind: Occ::Drop { var } });
                    claimed.push((p, p + 4));
                }
            }
        }

        // 6. Generic calls: `ident(`, skipping everything claimed above,
        //    keywords, and macros.
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if !is_word_char(bytes[i] as char) {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && is_word_char(bytes[i] as char) {
                i += 1;
            }
            let word = &text[start..i];
            if i >= bytes.len() || bytes[i] != b'(' {
                continue;
            }
            if claimed.iter().any(|&(a, b)| start < b && a < i + 1) {
                continue;
            }
            if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            if CALL_KEYWORDS.contains(&word) {
                continue;
            }
            let before = text[..start].chars().next_back();
            if before == Some('!') {
                continue; // macro name ended with `!`? (never: `!` precedes `(`)
            }
            // Macro invocation: `name!(`.
            if bytes.get(i).copied() == Some(b'(') && text[start..].starts_with(&format!("{word}!"))
            {
                continue;
            }
            let recv = match before {
                Some('.') => {
                    let chain = receiver_chain(text, start - 1);
                    if chain == "self" {
                        Recv::SelfDot
                    } else {
                        Recv::Expr
                    }
                }
                Some(':') => {
                    let qual = path_qualifier(text, start);
                    match qual {
                        Some(q) => Recv::Path(q),
                        None => Recv::Free,
                    }
                }
                Some(c) if is_word_char(c) => continue, // mid-identifier (defensive)
                _ => Recv::Free,
            };
            occs.push(PosOcc { pos: start, kind: Occ::Call { name: word.to_string(), recv } });
        }

        occs.sort_by_key(|o| o.pos);
        occs
    }

    /// Normalize a receiver chain into a lock identity.
    fn lock_id(&self, recv: &str, fn_idx: usize, stmt: &Stmt, pos: usize) -> String {
        let self_ty = self.out[fn_idx].self_ty.as_deref();
        if recv.is_empty() {
            let (line, col) = stmt.at(pos);
            return format!("<expr {}:{line}:{col}>", self.rel_path);
        }
        if let Some(rest) = recv.strip_prefix("self.") {
            return match self_ty {
                Some(t) => format!("{t}::{rest}"),
                None => rest.to_string(),
            };
        }
        if recv == "self" {
            return match self_ty {
                Some(t) => format!("{t}::self"),
                None => "self".to_string(),
            };
        }
        match recv.split_once('.') {
            // `s.dom` through a local alias: identity is the field path.
            Some((_, rest)) => rest.to_string(),
            None => recv.to_string(),
        }
    }
}

#[derive(Debug)]
struct PosOcc {
    pos: usize,
    kind: Occ,
}

#[derive(Debug)]
enum Occ {
    Acquire { lock: String, end: usize },
    Call { name: String, recv: Recv },
    Block { what: &'static str },
    Wait { guard_var: Option<String> },
    Drop { var: String },
}

/// The receiver chain ending just before the `.` at `dot`: identifiers and
/// dots, with `[index]` groups elided, stopping at anything else.
fn receiver_chain(text: &str, dot: usize) -> String {
    let bytes = text.as_bytes();
    let mut i = dot; // exclusive end; walk left
    let mut out: Vec<u8> = Vec::new();
    while i > 0 {
        let c = bytes[i - 1] as char;
        if is_word_char(c) || c == '.' {
            out.push(bytes[i - 1]);
            i -= 1;
        } else if c == ']' {
            // Skip the whole `[...]` group.
            let mut depth = 0i32;
            while i > 0 {
                match bytes[i - 1] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        i -= 1;
                        break;
                    }
                    _ => {}
                }
                i -= 1;
            }
            if depth != 0 {
                break;
            }
        } else {
            break;
        }
    }
    out.reverse();
    let s = String::from_utf8_lossy(&out).to_string();
    s.trim_matches('.').to_string()
}

/// The path qualifier before `Type::name(` at `start` (`start` points at
/// `name`): the last `::` segment, or `None` for bare `::name`.
fn path_qualifier(text: &str, start: usize) -> Option<String> {
    let before = &text[..start];
    let before = before.strip_suffix("::")?;
    let seg: String = before
        .chars()
        .rev()
        .take_while(|&c| is_word_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!seg.is_empty()).then_some(seg)
}

/// Whether the chain after an acquisition keeps yielding the guard: only
/// `unwrap`/`expect`/`unwrap_or_else` adapters up to the statement end.
/// Scrutinee positions (`if let Ok(g) = m.lock()`) accept an empty tail too.
fn guard_preserving_tail(tail: &str, _scrutinee: bool) -> bool {
    let mut t = tail.trim();
    loop {
        let mut advanced = false;
        for pat in GUARD_ADAPTERS {
            if let Some(rest) = t.strip_prefix(pat) {
                if pat.ends_with('(') {
                    // Skip to the matching close paren.
                    let mut depth = 1i32;
                    let mut end = rest.len();
                    for (i, c) in rest.char_indices() {
                        match c {
                            '(' => depth += 1,
                            ')' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = i + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    t = rest[end.min(rest.len())..].trim_start();
                } else {
                    t = rest.trim_start();
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    t.is_empty() || t == "?"
}

/// The `let`/assignment binding target of a statement, if any.
fn binding_name(text: &str) -> Option<String> {
    let t = text.trim_start();
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest.chars().take_while(|&c| is_word_char(c)).collect();
        let after = rest[name.len()..].trim_start();
        // `let Ok(g) = ...` patterns are handled by `pattern_binding`.
        if !name.is_empty() && (after.starts_with('=') || after.starts_with(':')) {
            return Some(name);
        }
        return None;
    }
    // Plain re-assignment: `sched = self.lock_sched();`
    let name: String = t.chars().take_while(|&c| is_word_char(c)).collect();
    if !name.is_empty() && !CALL_KEYWORDS.contains(&name.as_str()) {
        let after = t[name.len()..].trim_start();
        if after.starts_with('=') && !after.starts_with("==") {
            return Some(name);
        }
    }
    None
}

/// The inner binding of a scrutinee pattern: `if let Ok(g) = ...` → `g`.
fn pattern_binding(text: &str) -> Option<String> {
    let let_pos = word_occurrences(text, "let").first().copied()?;
    let rest = text[let_pos + 3..].trim_start();
    let open = rest.find('(')?;
    let eq = rest.find('=')?;
    if open > eq {
        return None;
    }
    let inner: String =
        rest[open + 1..].trim_start().chars().take_while(|&c| is_word_char(c)).collect();
    (!inner.is_empty()).then_some(inner)
}

/// The name of a `fn` item declared by this statement, if it is one.
fn fn_item_name(text: &str) -> Option<String> {
    let pos = word_occurrences(text, "fn").first().copied()?;
    let rest = text[pos + 2..].trim_start();
    let name: String = rest.chars().take_while(|&c| is_word_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// The `impl`/`trait` block's subject type: the word before `for`'s target,
/// or the first type name after the keyword.
fn impl_type(text: &str) -> Option<String> {
    let tail = if let Some(f) = word_occurrences(text, "for").first() {
        &text[f + 3..]
    } else if let Some(i) = word_occurrences(text, "impl").first() {
        let after = &text[i + 4..];
        // Skip a generics list: `impl<T> Foo<T>`.
        match after.trim_start().strip_prefix('<') {
            Some(rest) => match rest.find('>') {
                Some(gt) => &rest[gt + 1..],
                None => rest,
            },
            None => after,
        }
    } else if let Some(t) = word_occurrences(text, "trait").first() {
        &text[t + 5..]
    } else {
        return None;
    };
    let name: String = tail.trim_start().chars().take_while(|&c| is_word_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// First real source line of a statement (1-based), falling back to the
/// terminator's line.
fn first_line(stmt: &Stmt, fallback: usize) -> usize {
    stmt.pos.iter().copied().find(|&p| p != (0, 0)).map(|(l, _)| l).unwrap_or(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn models(src: &str) -> Vec<FnModel> {
        let lines = scan(src);
        let first = file_models("crates/x/src/lib.rs", &lines, &[]);
        let helpers = guard_helpers(&first);
        file_models("crates/x/src/lib.rs", &lines, &helpers)
    }

    #[test]
    fn methods_get_their_impl_type_and_lock_identity() {
        let ms = models(
            "struct S { m: std::sync::Mutex<u32> }\n\
             impl S {\n\
                 fn a(&self) -> u32 {\n\
                     let g = self.m.lock().unwrap();\n\
                     *g\n\
                 }\n\
             }\n",
        );
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "a");
        assert_eq!(ms[0].self_ty.as_deref(), Some("S"));
        let acquire = ms[0]
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Acquire { lock } => Some(lock.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(acquire, "S::m");
    }

    #[test]
    fn calls_after_an_acquire_carry_the_held_lock() {
        let ms = models(
            "impl S {\n\
                 fn a(&self) {\n\
                     let g = self.m.lock().unwrap();\n\
                     self.helper(*g);\n\
                 }\n\
             }\n",
        );
        let call = ms[0]
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert_eq!(call.held, vec!["S::m".to_string()]);
    }

    #[test]
    fn temporaries_do_not_hold_past_their_statement() {
        let ms = models(
            "impl S {\n\
                 fn a(&self) {\n\
                     let v = self.m.lock().unwrap().clone();\n\
                     self.helper(v);\n\
                 }\n\
             }\n",
        );
        let call = ms[0]
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert!(call.held.is_empty(), "clone() drops the guard at statement end");
    }

    #[test]
    fn drop_releases_and_adjacent_functions_are_independent() {
        let ms = models(
            "impl S {\n\
                 fn a(&self) {\n\
                     let g = self.m.lock().unwrap();\n\
                     drop(g);\n\
                     self.helper(1);\n\
                 }\n\
                 fn b(&self) {\n\
                     self.helper(2);\n\
                 }\n\
             }\n",
        );
        for m in &ms {
            let call = m
                .events
                .iter()
                .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
                .unwrap();
            assert!(call.held.is_empty(), "{}: nothing held", m.name);
        }
    }

    #[test]
    fn condvar_wait_releases_its_own_guard() {
        let ms = models(
            "impl S {\n\
                 fn a(&self) {\n\
                     let mut st = self.state.lock().unwrap();\n\
                     st = self.cv.wait(st).unwrap();\n\
                     drop(st);\n\
                 }\n\
             }\n",
        );
        let wait = ms[0]
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Block { what } if *what == "Condvar::wait"))
            .unwrap();
        assert!(wait.held.is_empty(), "own guard exempted: {:?}", wait.held);
    }

    #[test]
    fn guard_returning_helpers_acquire_at_the_call_site() {
        let ms = models(
            "impl S {\n\
                 fn lock_sched(&self) -> std::sync::MutexGuard<'_, u32> {\n\
                     self.sched.lock().unwrap()\n\
                 }\n\
                 fn work(&self) {\n\
                     let sched = self.lock_sched();\n\
                     self.helper(*sched);\n\
                 }\n\
             }\n",
        );
        let helper = ms.iter().find(|m| m.name == "lock_sched").unwrap();
        assert_eq!(helper.returns_guard.as_deref(), Some("S::sched"));
        let work = ms.iter().find(|m| m.name == "work").unwrap();
        let call = work
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert_eq!(call.held, vec!["S::sched".to_string()]);
    }

    #[test]
    fn blocking_patterns_and_receiver_kinds_classify() {
        let ms = models(
            "fn free_fn(file: &mut std::fs::File) {\n\
                 file.sync_all().unwrap();\n\
                 Helper::assoc();\n\
                 other(1);\n\
             }\n",
        );
        let kinds: Vec<String> = ms[0]
            .events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Block { what } => format!("block:{what}"),
                EventKind::Call { name, recv } => format!("call:{name}:{recv:?}"),
                EventKind::Acquire { lock } => format!("acq:{lock}"),
            })
            .collect();
        assert!(kinds.contains(&"block:sync_all".to_string()), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("call:assoc:Path")), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("call:other:Free")), "{kinds:?}");
    }

    #[test]
    fn path_join_is_not_a_thread_join() {
        let ms = models(
            "fn f(p: &std::path::Path, h: std::thread::JoinHandle<()>) {\n\
                 let q = p.join(\"x\");\n\
                 h.join().unwrap();\n\
             }\n",
        );
        let joins: Vec<usize> = ms[0]
            .events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Block { what } if *what == "join"))
            .map(|e| e.line)
            .collect();
        assert_eq!(joins, vec![3]);
    }

    #[test]
    fn test_modules_are_not_modeled() {
        let ms = models(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn fake(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); }\n\
             }\n",
        );
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "real");
    }

    #[test]
    fn model_scope_covers_library_sources_only() {
        assert!(in_model_scope("crates/core/src/optimizer/parallel.rs"));
        assert!(in_model_scope("src/main.rs"));
        assert!(!in_model_scope("crates/core/tests/props.rs"));
        assert!(!in_model_scope("tests/integration.rs"));
        assert!(!in_model_scope("examples/demo.rs"));
    }
}
