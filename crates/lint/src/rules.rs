//! The per-file HYPPO-specific rules, rule-id registry, and rule families.
//!
//! Every rule is a textual heuristic over the blanked [`Line`] model — no
//! type information, no macro expansion. That is deliberate: the rules
//! protect *repo-specific* invariants (bit-identical plans under any thread
//! count, justified memory orderings, audited lock nesting) that `clippy`
//! cannot know about, and a heuristic that errs toward flagging is fine
//! because every site can carry an `allow(...)` annotation with a mandatory
//! reason — which is exactly the audit trail the rules exist to create.

use crate::annot::Suppressions;
use crate::scan::{is_word_char, word_occurrences, Line};
use crate::Finding;

/// Rule: iteration over `HashMap`/`HashSet` in determinism-critical crates.
pub const NONDET_ITERATION: &str = "nondeterministic-iteration";
/// Rule: wall-clock reads in plan-decision code.
pub const WALL_CLOCK: &str = "wall-clock-in-planner";
/// Rule: `Ordering::Relaxed` (and `fetch_min`/`fetch_max`/
/// `compare_exchange`) without a written justification.
pub const RELAXED_ORDERING: &str = "relaxed-ordering-justified";
/// Rule: `unsafe` without an adjacent `// SAFETY:` comment.
pub const UNSAFE_COMMENT: &str = "unsafe-needs-safety-comment";
/// Rule: lock acquired while another guard is plausibly live.
pub const NESTED_LOCK: &str = "nested-lock-acquire";
/// Rule: the removed pre-`Planner` API must not come back.
pub const DEPRECATED_API: &str = "no-deprecated-planner-api";
/// Rule: raw filesystem mutation in durability-critical crates.
pub const DIRECT_FS_WRITE: &str = "direct-fs-write-outside-persist";
/// Rule (interprocedural): a cycle in the static lock-acquisition graph.
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// Rule (interprocedural): a blocking operation reachable under a guard.
pub const BLOCKING_CRITICAL: &str = "blocking-in-critical-section";
/// Rule: raw OS-thread creation outside the scheduler crate.
pub const THREAD_SPAWN: &str = "thread-spawn-outside-sched";
/// Meta rule: a well-formed suppression that matched no finding. Not in
/// [`RULE_IDS`]: stale suppressions are deleted, never themselves allowed.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// All suppressible rule ids (the meta rules `malformed-allow` and
/// `unused-suppression` are deliberately absent).
pub const RULE_IDS: &[&str] = &[
    NONDET_ITERATION,
    WALL_CLOCK,
    RELAXED_ORDERING,
    UNSAFE_COMMENT,
    NESTED_LOCK,
    DEPRECATED_API,
    DIRECT_FS_WRITE,
    LOCK_ORDER_CYCLE,
    BLOCKING_CRITICAL,
    THREAD_SPAWN,
];

/// The family a rule belongs to (grouping for `--json` consumers).
pub fn rule_family(rule: &str) -> &'static str {
    match rule {
        NONDET_ITERATION | WALL_CLOCK => "determinism",
        RELAXED_ORDERING | NESTED_LOCK | LOCK_ORDER_CYCLE | BLOCKING_CRITICAL | THREAD_SPAWN => {
            "concurrency"
        }
        UNSAFE_COMMENT => "safety",
        DIRECT_FS_WRITE => "durability",
        DEPRECATED_API => "api",
        _ => "suppression", // malformed-allow, unused-suppression
    }
}

/// Directories whose code must produce bit-identical results under any
/// thread count: the planner, the runtime, the serving layer, and the
/// hypergraph kernels.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/core/src/optimizer/",
    "crates/runtime/src/",
    "crates/serve/src/",
    "crates/hypergraph/src/",
];

/// Plan-decision code: costs and tie-breaks may never depend on the clock.
/// (`monitor.rs`, benches, and `RunReport` timing are outside this scope.)
const PLANNER_SCOPE: &[&str] = &["crates/core/src/optimizer/", "crates/hypergraph/src/"];

/// Concurrency-audited code: atomics and lock nesting carry justifications.
/// `crates/persist` joined the scope with `GroupCommitWal` — the WAL mutexes
/// and fsync-absorption counters are as concurrency-critical as the runtime.
const CONCURRENCY_SCOPE: &[&str] = &[
    "crates/core/src/optimizer/",
    "crates/runtime/src/",
    "crates/serve/src/",
    "crates/persist/src/",
    "crates/sched/src/",
];

/// The one crate allowed to create OS threads: the work-stealing scheduler
/// owns parking, stealing, and shutdown, so every pool in the workspace must
/// be built from its `run_scoped`/`run_with_driver`/`spawn_pool` primitives.
/// Benches and tests that truly need a raw thread annotate why.
const SCHED_CRATE: &str = "crates/sched/";

/// Durability-audited code: the core system and the runtime hold state the
/// WAL and snapshot recovery must be able to rebuild, so raw filesystem
/// mutation there either goes through `core::persist::atomic_write` /
/// `hyppo-persist` or carries a written justification. The persist crate
/// itself is where such writes belong and is deliberately out of scope.
const DURABILITY_SCOPE: &[&str] = &["crates/core/src/", "crates/runtime/src/", "crates/serve/src/"];

fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// Run every per-file rule applicable to `rel_path` over `lines`. (The
/// interprocedural rules run afterwards over the whole-workspace model.)
pub fn check_file(rel_path: &str, lines: &[Line], sup: &Suppressions) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut emit = |rule: &'static str, line: usize, column: usize, message: String| {
        if !sup.allows(rule, line) {
            out.push(Finding { rule, file: rel_path.to_string(), line, column, message });
        }
    };
    if in_scope(rel_path, DETERMINISM_SCOPE) {
        nondet_iteration(lines, &mut emit);
    }
    if in_scope(rel_path, PLANNER_SCOPE) {
        wall_clock(lines, &mut emit);
    }
    if in_scope(rel_path, CONCURRENCY_SCOPE) {
        relaxed_ordering(lines, &mut emit);
        nested_lock(lines, &mut emit);
    }
    if in_scope(rel_path, DURABILITY_SCOPE) {
        direct_fs_write(lines, &mut emit);
    }
    if !rel_path.starts_with(SCHED_CRATE) {
        thread_spawn(lines, &mut emit);
    }
    unsafe_comment(lines, &mut emit);
    deprecated_api(lines, &mut emit);
    out
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Track identifiers declared with a `HashMap`/`HashSet` top-level type
/// (`name: HashMap<...>` fields/bindings, `let name = HashMap::new()`),
/// then flag any iteration over them (`for .. in`, `.iter()`, `.keys()`,
/// `.values()`, `.drain()`, `.into_iter()`) whose statement does not
/// immediately impose an order (`sort`/`BTree*`) or fold order-independently
/// (`count`/`len`/`all`/`any`/`min`/`max`).
fn nondet_iteration(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    let vars = hash_typed_idents(lines);
    if vars.is_empty() {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        for var in &vars {
            let mut hit: Option<(&str, usize)> = None;
            'occ: for pos in word_occurrences(code, var) {
                let after = &code[pos + var.len()..];
                for method in [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("] {
                    if after.starts_with(method) {
                        hit = Some((method, pos + 1));
                        break 'occ;
                    }
                }
            }
            if hit.is_none() {
                if let Some(expr) = for_loop_expr(code) {
                    if receiver_is(&expr, var) {
                        hit = Some(("for .. in", 1));
                    }
                }
            }
            let Some((how, col)) = hit else { continue };
            if how != "for .. in" && statement_imposes_order(lines, idx) {
                continue;
            }
            emit(
                NONDET_ITERATION,
                idx + 1,
                col,
                format!(
                    "iteration over hash-ordered `{var}` ({how}) — hash iteration order is \
                     nondeterministic and breaks parallel-vs-serial bit-identity; sort the \
                     result, use a BTree collection, or annotate why order cannot matter"
                ),
            );
        }
    }
}

/// Identifiers whose declared type starts with `HashMap`/`HashSet`.
fn hash_typed_idents(lines: &[Line]) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    for line in lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in word_occurrences(code, ty) {
                let before = strip_type_prefix(&code[..pos]);
                let name = if before.ends_with(':') && !before.ends_with("::") {
                    trailing_ident(before[..before.len() - 1].trim_end())
                } else if before.ends_with('=') {
                    // `let name = HashMap::new()` / `= HashMap::from(...)`
                    let_binding_name(code)
                } else {
                    None
                };
                if let Some(name) = name {
                    if !vars.contains(&name) {
                        vars.push(name);
                    }
                }
            }
        }
    }
    vars
}

/// Peel `&`, `mut`, and path qualifiers off the text before a type name so
/// `x: &mut std::collections::HashMap<..>` still resolves to `x`, while
/// `Vec<Mutex<HashMap<..>>>` (preceding `<`) resolves to nothing.
fn strip_type_prefix(text: &str) -> &str {
    let mut t = text.trim_end();
    loop {
        if let Some(stripped) = t.strip_suffix("::") {
            // Strip a full trailing path segment: `std::collections::`.
            let stripped = stripped.trim_end_matches(is_word_char);
            t = stripped.trim_end();
        } else if let Some(stripped) = t.strip_suffix("mut") {
            if stripped.ends_with([' ', '&']) || stripped.is_empty() {
                t = stripped.trim_end();
            } else {
                break;
            }
        } else if let Some(stripped) = t.strip_suffix('&') {
            t = stripped.trim_end();
        } else {
            break;
        }
    }
    t
}

fn trailing_ident(text: &str) -> Option<String> {
    let name: String = text
        .chars()
        .rev()
        .take_while(|&c| is_word_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().unwrap().is_ascii_digit()).then_some(name)
}

/// The bound name of a `let [mut] name` on this line.
fn let_binding_name(code: &str) -> Option<String> {
    let pos = word_occurrences(code, "let").first().copied()?;
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_word_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// The iterated expression of a `for <pat> in <expr> {` line, if any.
fn for_loop_expr(code: &str) -> Option<String> {
    let f = word_occurrences(code, "for").first().copied()?;
    let in_rel = word_occurrences(&code[f..], "in").first().copied()?;
    let expr = &code[f + in_rel + 2..];
    let expr = match expr.find('{') {
        Some(b) => &expr[..b],
        None => expr,
    };
    Some(expr.trim().to_string())
}

/// Whether `expr`'s base receiver is `var` (through `&`, `mut`, parens, and
/// a leading `self.`).
fn receiver_is(expr: &str, var: &str) -> bool {
    let mut e = expr.trim();
    loop {
        let before = e;
        e = e.trim_start_matches(['&', '(']).trim_start();
        e = e.strip_prefix("mut ").unwrap_or(e).trim_start();
        e = e.strip_prefix("self.").unwrap_or(e);
        if e == before {
            break;
        }
    }
    let base: String = e.chars().take_while(|&c| is_word_char(c)).collect();
    base == var && {
        let after = e[base.len()..].chars().next().unwrap_or(' ');
        !is_word_char(after) && after != ':'
    }
}

/// Whether the statement containing line `idx` sorts its result or folds it
/// order-independently (joined with up to 4 continuation lines).
fn statement_imposes_order(lines: &[Line], idx: usize) -> bool {
    let mut stmt = String::new();
    for line in lines.iter().skip(idx).take(5) {
        stmt.push_str(&line.code);
        stmt.push(' ');
        if line.code.contains(';') {
            break;
        }
    }
    [".sort", "sorted", "BTree", ".count(", ".len(", ".all(", ".any(", ".min(", ".max("]
        .iter()
        .any(|p| stmt.contains(p))
}

// ---------------------------------------------------------------------------
// wall-clock-in-planner
// ---------------------------------------------------------------------------

fn wall_clock(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime::now"] {
            if let Some(pos) = line.code.find(pat) {
                emit(
                    WALL_CLOCK,
                    idx + 1,
                    pos + 1,
                    format!(
                        "`{pat}` in plan-decision code — costs and tie-breaks must never \
                         depend on the clock (timing belongs in monitor.rs, benches, or \
                         RunReport fields)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// relaxed-ordering-justified
// ---------------------------------------------------------------------------

fn relaxed_ordering(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let relaxed = word_occurrences(code, "Relaxed").first().copied();
        let rmw =
            [".fetch_min(", ".fetch_max(", ".compare_exchange"].iter().find_map(|p| code.find(p));
        if let Some(pos) = relaxed.or(rmw) {
            emit(
                RELAXED_ORDERING,
                idx + 1,
                pos + 1,
                "atomic with a weak/RMW ordering must carry an \
                 `allow(relaxed-ordering-justified)` annotation explaining why the \
                 ordering is safe"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// thread-spawn-outside-sched
// ---------------------------------------------------------------------------

/// Flag raw OS-thread creation (`thread::spawn` / `thread::Builder`)
/// anywhere outside `crates/sched/`. Scoped `scope.spawn(..)` closures are
/// deliberately not matched: `std::thread::scope` blocks until its threads
/// finish, so a scoped spawn cannot leak a thread past its caller — the
/// hazard this rule exists for is detached pools with ad-hoc parking and
/// shutdown, which belong in the scheduler.
fn thread_spawn(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        for pat in ["thread::spawn(", "thread::Builder"] {
            if let Some(pos) = line.code.find(pat) {
                emit(
                    THREAD_SPAWN,
                    idx + 1,
                    pos + 1,
                    format!(
                        "`{pat}..` creates a raw OS thread outside `crates/sched` — worker \
                         pools go through `hyppo-sched` (`run_scoped`, `run_with_driver`, \
                         `spawn_pool`) so parking, stealing, and shutdown stay centralized; \
                         annotate benches/tests that truly need a bare thread"
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

fn unsafe_comment(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = word_occurrences(&line.code, "unsafe").first().copied() else { continue };
        let documented = (idx.saturating_sub(3)..=idx)
            .any(|j| lines.get(j).is_some_and(|l| l.comment.contains("SAFETY:")));
        if !documented {
            emit(
                UNSAFE_COMMENT,
                idx + 1,
                pos + 1,
                "`unsafe` without an adjacent `// SAFETY:` comment — state the invariant \
                 that makes this sound"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// nested-lock-acquire
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Guard {
    /// Binding name (`None` for `if let`/`while let`/`match` scrutinee
    /// temporaries, which live for the following block).
    name: Option<String>,
    depth: i32,
    line: usize,
}

/// Textual scope heuristic: walk statements (split on `;`, `{`, `}`) while
/// tracking brace depth; a `let g = ...lock()/.read()/.write()...` keeps a
/// guard live until its block closes (or an explicit `drop(g)`), and any
/// further acquisition while a guard is live — or two acquisitions in one
/// statement — is flagged. Annotate with the lock-order rationale.
///
/// Guard liveness resets at every `fn` item boundary: a guard can never
/// outlive the function that bound it, so even if brace tracking was thrown
/// off (strings are blanked, but macros can still unbalance the model), a
/// stale guard cannot leak into the *next* function and flag its first
/// acquisition.
fn nested_lock(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    // Empty-argument forms only: `Mutex::lock`/`RwLock::read`/`RwLock::write`
    // take no arguments, while `io::Read::read(&mut buf)` and the
    // `OpenOptions` builder's `.read(true)`/`.write(true)` do.
    const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt = String::new();
    let mut stmt_start = 0usize;

    for (idx, line) in lines.iter().enumerate() {
        for c in line.code.chars() {
            if stmt.trim().is_empty() {
                stmt_start = idx;
            }
            match c {
                '{' | '}' | ';' => {
                    if c == '{' && !word_occurrences(&stmt, "fn").is_empty() {
                        // Entering a new `fn` item: no guard crosses a
                        // function boundary.
                        guards.clear();
                        stmt.clear();
                        depth += 1;
                        continue;
                    }
                    let acqs: usize = ACQUIRE.iter().map(|p| stmt.matches(p).count()).sum();
                    if acqs > 0 {
                        let live: Vec<usize> = guards.iter().map(|g| g.line + 1).collect();
                        if !live.is_empty() || acqs > 1 {
                            let col = ACQUIRE
                                .iter()
                                .filter_map(|p| stmt.find(p))
                                .min()
                                .map_or(1, |p| p + 1);
                            emit(
                                NESTED_LOCK,
                                stmt_start + 1,
                                col,
                                format!(
                                    "lock acquired while {} plausibly live (guard(s) from \
                                     line(s) {:?}) — annotate with the acquisition-order \
                                     rationale or narrow the guard's scope",
                                    if acqs > 1 && live.is_empty() {
                                        "another acquisition in the same statement is"
                                    } else {
                                        "an earlier guard is"
                                    },
                                    if live.is_empty() { vec![stmt_start + 1] } else { live }
                                ),
                            );
                        }
                        let trimmed = stmt.trim_start();
                        if let Some(name) =
                            trimmed.starts_with("let ").then(|| let_binding_name(&stmt)).flatten()
                        {
                            let d = if c == '{' { depth + 1 } else { depth };
                            guards.push(Guard { name: Some(name), depth: d, line: stmt_start });
                        } else if c == '{' {
                            // `if let` / `while let` / `match` scrutinee
                            // temporary: lives for the following block.
                            guards.push(Guard { name: None, depth: depth + 1, line: stmt_start });
                        }
                    }
                    if let Some(dropped) = drop_target(&stmt) {
                        guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
                    }
                    stmt.clear();
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            guards.retain(|g| g.depth <= depth);
                        }
                        _ => {}
                    }
                }
                _ => stmt.push(c),
            }
        }
        stmt.push(' ');
    }
}

/// The identifier inside a `drop(<ident>)` call, if the statement has one.
fn drop_target(stmt: &str) -> Option<String> {
    let pos = word_occurrences(stmt, "drop").first().copied()?;
    let rest = stmt[pos + 4..].trim_start().strip_prefix('(')?;
    let name: String = rest.trim_start().chars().take_while(|&c| is_word_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

// ---------------------------------------------------------------------------
// direct-fs-write-outside-persist
// ---------------------------------------------------------------------------

/// Filesystem-mutation call patterns. Reads (`fs::read*`, `File::open`) are
/// fine — only mutations can desynchronize disk state from the WAL.
const FS_WRITE_PATTERNS: &[&str] = &[
    "fs::write(",
    "File::create(",
    "OpenOptions::new",
    "fs::rename(",
    "fs::copy(",
    "fs::create_dir",
    "fs::remove_file(",
    "fs::remove_dir",
];

/// Flag raw filesystem mutations in durability-critical code. Scanning
/// stops at the first `#[cfg(test)]` line: tests scribble in temp dirs by
/// design and hold no recoverable state.
fn direct_fs_write(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        if line.code.contains("#[cfg(test)]") {
            break;
        }
        for pat in FS_WRITE_PATTERNS {
            if let Some(pos) = line.code.find(pat) {
                emit(
                    DIRECT_FS_WRITE,
                    idx + 1,
                    pos + 1,
                    format!(
                        "`{pat}..)` mutates the filesystem in durability-critical code — \
                         recoverable state must reach disk through `core::persist::atomic_write` \
                         or the `hyppo-persist` WAL/store so crash recovery stays sound; route \
                         the write through those, or annotate why it cannot desynchronize \
                         recoverable state"
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-deprecated-planner-api
// ---------------------------------------------------------------------------

fn deprecated_api(lines: &[Line], emit: &mut impl FnMut(&'static str, usize, usize, String)) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut flag = |what: &str, pos: usize| {
            emit(
                DEPRECATED_API,
                idx + 1,
                pos + 1,
                format!(
                    "`{what}` is the removed pre-Planner API — use \
                     `Planner::exact()/greedy()` with `PlanRequest` instead"
                ),
            )
        };
        if let Some(pos) = word_occurrences(code, "SearchOptions").first().copied() {
            flag("SearchOptions", pos);
        }
        for pos in word_occurrences(code, "optimize") {
            if code[pos + "optimize".len()..].starts_with('(') && !code[..pos].ends_with('.') {
                flag("optimize(", pos);
                break;
            }
        }
    }
}
