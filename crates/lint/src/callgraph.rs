//! Name-and-receiver call resolution plus transitive reachability summaries.
//!
//! The resolver maps a [`Recv`]-classified call to candidate [`FnModel`]s:
//! `self.f()` stays inside the enclosing impl type, `Type::f()` resolves
//! against that type's associated functions, an unknown-receiver `expr.f()`
//! fans out to every workspace method named `f`, and a bare `f()` to every
//! free function. Fan-out over-approximates on purpose — the rules downstream
//! accept justified suppressions, not missed deadlocks. Direct recursion
//! (`f` resolving to itself) is skipped; mutual recursion is cut by the
//! in-progress marker during summary computation, which under-approximates
//! cycles (documented in DESIGN.md §15).
//!
//! [`reachability`] computes, per function, every lock identity it may
//! transitively acquire and whether it may transitively block, each with a
//! witness call path for the reports.

use std::collections::BTreeMap;

use crate::model::{EventKind, FnModel, Recv};

/// All modeled functions with a by-name index, in deterministic order.
pub struct Workspace {
    /// Function models, sorted by `(file, line)`.
    pub fns: Vec<FnModel>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Index `fns` (re-sorted by `(file, line)` so resolution order — and
    /// therefore every downstream report — is deterministic).
    pub fn new(mut fns: Vec<FnModel>) -> Self {
        fns.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Workspace { fns, by_name }
    }

    /// Candidate callees for a call from `caller` to `name` with receiver
    /// shape `recv`. Never includes `caller` itself.
    pub fn resolve(&self, caller: usize, name: &str, recv: &Recv) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else { return Vec::new() };
        let caller_ty = self.fns[caller].self_ty.as_deref();
        cands
            .iter()
            .copied()
            .filter(|&j| j != caller)
            .filter(|&j| {
                let ty = self.fns[j].self_ty.as_deref();
                match recv {
                    Recv::SelfDot => ty.is_some() && ty == caller_ty,
                    Recv::Path(t) => {
                        let want = if t == "Self" { caller_ty } else { Some(t.as_str()) };
                        ty.is_some() && ty == want
                    }
                    Recv::Expr => ty.is_some(),
                    Recv::Free => ty.is_none(),
                }
            })
            .collect()
    }
}

/// One hop of a witness call path: `callee` entered from `file:line`.
#[derive(Debug, Clone)]
pub struct Step {
    /// Qualified callee name (`Type::fn` or `fn`).
    pub callee: String,
    /// Call-site file (the caller's file).
    pub file: String,
    /// Call-site line.
    pub line: usize,
}

/// Witness for a transitively reachable lock acquisition.
#[derive(Debug, Clone)]
pub struct AcquireWitness {
    /// Call path from the summarized function down to the acquiring frame
    /// (empty for an acquisition in the function's own body).
    pub path: Vec<Step>,
    /// File of the acquiring statement.
    pub file: String,
    /// Line of the acquiring statement.
    pub line: usize,
}

/// Witness for a transitively reachable blocking operation.
#[derive(Debug, Clone)]
pub struct BlockWitness {
    /// Operation label (`sync_all`, `recv`, ...).
    pub what: String,
    /// Call path down to the blocking frame (empty when direct).
    pub path: Vec<Step>,
    /// File of the blocking statement.
    pub file: String,
    /// Line of the blocking statement.
    pub line: usize,
}

/// Per-function transitive summary.
#[derive(Debug, Clone, Default)]
pub struct Reach {
    /// Every lock identity this function may acquire (directly or through
    /// callees), with one deterministic witness each.
    pub acquires: BTreeMap<String, AcquireWitness>,
    /// First blocking operation this function may reach, if any.
    pub block: Option<BlockWitness>,
}

enum State {
    Todo,
    InProgress,
    Done(Reach),
}

/// Compute [`Reach`] for every function in the workspace, index-aligned
/// with `ws.fns`.
pub fn reachability(ws: &Workspace) -> Vec<Reach> {
    let mut memo: Vec<State> = (0..ws.fns.len()).map(|_| State::Todo).collect();
    for i in 0..ws.fns.len() {
        go(ws, &mut memo, i);
    }
    memo.into_iter()
        .map(|s| match s {
            State::Done(r) => r,
            _ => Reach::default(),
        })
        .collect()
}

fn go(ws: &Workspace, memo: &mut Vec<State>, i: usize) -> Reach {
    match &memo[i] {
        State::Done(r) => return r.clone(),
        State::InProgress => return Reach::default(), // cut recursion cycles
        State::Todo => {}
    }
    memo[i] = State::InProgress;
    let mut r = Reach::default();
    let f = &ws.fns[i];
    for ev in &f.events {
        match &ev.kind {
            EventKind::Acquire { lock } => {
                r.acquires.entry(lock.clone()).or_insert_with(|| AcquireWitness {
                    path: Vec::new(),
                    file: f.file.clone(),
                    line: ev.line,
                });
            }
            EventKind::Block { what } => {
                if r.block.is_none() {
                    r.block = Some(BlockWitness {
                        what: (*what).to_string(),
                        path: Vec::new(),
                        file: f.file.clone(),
                        line: ev.line,
                    });
                }
            }
            EventKind::Call { name, recv } => {
                for j in ws.resolve(i, name, recv) {
                    let sub = go(ws, memo, j);
                    let step =
                        Step { callee: ws.fns[j].qualified(), file: f.file.clone(), line: ev.line };
                    for (lock, w) in &sub.acquires {
                        r.acquires.entry(lock.clone()).or_insert_with(|| {
                            let mut path = vec![step.clone()];
                            path.extend(w.path.iter().cloned());
                            AcquireWitness { path, file: w.file.clone(), line: w.line }
                        });
                    }
                    if r.block.is_none() {
                        if let Some(b) = &sub.block {
                            let mut path = vec![step.clone()];
                            path.extend(b.path.iter().cloned());
                            r.block = Some(BlockWitness {
                                what: b.what.clone(),
                                path,
                                file: b.file.clone(),
                                line: b.line,
                            });
                        }
                    }
                }
            }
        }
    }
    let out = r.clone();
    memo[i] = State::Done(r);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{file_models, guard_helpers};
    use crate::scan::scan;

    fn ws(src: &str) -> Workspace {
        let lines = scan(src);
        let first = file_models("crates/x/src/lib.rs", &lines, &[]);
        let helpers = guard_helpers(&first);
        Workspace::new(file_models("crates/x/src/lib.rs", &lines, &helpers))
    }

    fn idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn self_calls_stay_inside_the_impl_type() {
        let w = ws("impl A { fn f(&self) { self.g(); } fn g(&self) {} }\n\
             impl B { fn g(&self) {} }\n");
        let f = idx(&w, "f");
        let callees = w.resolve(f, "g", &Recv::SelfDot);
        assert_eq!(callees.len(), 1);
        assert_eq!(w.fns[callees[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn path_calls_resolve_against_the_named_type() {
        let w = ws("impl A { fn make() {} }\n\
             impl B { fn make() {} }\n\
             fn top() { A::make(); }\n");
        let top = idx(&w, "top");
        let callees = w.resolve(top, "make", &Recv::Path("A".to_string()));
        assert_eq!(callees.len(), 1);
        assert_eq!(w.fns[callees[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn expr_calls_fan_out_to_all_methods_but_not_free_fns() {
        let w = ws("impl A { fn run(&self) {} }\n\
             impl B { fn run(&self) {} }\n\
             fn run() {}\n\
             fn top(x: &A) { x.run(); }\n");
        let top = idx(&w, "top");
        let callees = w.resolve(top, "run", &Recv::Expr);
        assert_eq!(callees.len(), 2);
        assert!(callees.iter().all(|&j| w.fns[j].self_ty.is_some()));
    }

    #[test]
    fn transitive_acquires_and_blocks_carry_witness_paths() {
        let w = ws("impl A {\n\
                 fn top(&self) { self.mid(); }\n\
                 fn mid(&self) { self.leaf(); }\n\
                 fn leaf(&self) {\n\
                     let g = self.m.lock().unwrap();\n\
                     self.file.sync_all().unwrap();\n\
                 }\n\
             }\n");
        let reach = reachability(&w);
        let top = idx(&w, "top");
        let acq = reach[top].acquires.get("A::m").expect("transitive acquire");
        let path: Vec<&str> = acq.path.iter().map(|s| s.callee.as_str()).collect();
        assert_eq!(path, ["A::mid", "A::leaf"]);
        assert_eq!(acq.line, 5);
        let block = reach[top].block.as_ref().expect("transitive block");
        assert_eq!(block.what, "sync_all");
        assert_eq!(block.line, 6);
    }

    #[test]
    fn recursion_terminates() {
        let w = ws("impl A {\n\
                 fn ping(&self) { self.pong(); }\n\
                 fn pong(&self) { self.ping(); let g = self.m.lock().unwrap(); }\n\
             }\n");
        let reach = reachability(&w);
        let ping = idx(&w, "ping");
        assert!(reach[ping].acquires.contains_key("A::m"));
    }
}
