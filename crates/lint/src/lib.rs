//! `hyppo-lint`: determinism & concurrency static analysis for the HYPPO
//! workspace.
//!
//! The repo's headline guarantee — *bit-identical plans and artifacts under
//! any thread count* — is a property one stray `HashMap` iteration,
//! wall-clock read, or unjustified `Ordering::Relaxed` silently destroys,
//! and one that `clippy` cannot check because the invariants are
//! HYPPO-specific. This crate is the program-level gate: a self-contained,
//! dependency-free pass over every `.rs` file under `src/`, `crates/`,
//! `tests/`, and `examples/` (vendored crates and lint fixtures excluded),
//! with per-site suppression via
//!
//! ```text
//! // hyppo-lint: allow(<rule>) <mandatory reason>
//! ```
//!
//! Per-file rules scan each file's blanked line model; the interprocedural
//! rules additionally parse every library source into a lightweight program
//! model (`model`), resolve a call graph by name + receiver heuristics
//! (`callgraph`), and analyze the static lock-acquisition graph
//! (`lockgraph`). See `DESIGN.md` §10 and §15.
//!
//! | rule | family | flags |
//! |------|--------|-------|
//! | `nondeterministic-iteration` | determinism | `HashMap`/`HashSet` iteration in planner/runtime/hypergraph code |
//! | `wall-clock-in-planner` | determinism | `Instant::now`/`SystemTime::now` in plan-decision code |
//! | `relaxed-ordering-justified` | concurrency | weak/RMW atomic orderings without a written justification |
//! | `nested-lock-acquire` | concurrency | a lock acquired while another guard is plausibly live (same fn) |
//! | `lock-order-cycle` | concurrency | a cycle in the workspace lock-acquisition graph (interprocedural) |
//! | `blocking-in-critical-section` | concurrency | a blocking call reachable while a guard is held (interprocedural) |
//! | `thread-spawn-outside-sched` | concurrency | raw `thread::spawn`/`thread::Builder` outside the `hyppo-sched` crate |
//! | `unsafe-needs-safety-comment` | safety | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `no-deprecated-planner-api` | api | `SearchOptions` / free-function `optimize(` |
//! | `direct-fs-write-outside-persist` | durability | raw filesystem mutation in durability-critical crates |
//! | `malformed-allow` | suppression | `allow(...)` without a reason, or naming an unknown rule |
//! | `unused-suppression` | suppression | a well-formed `allow(...)` that matched no finding (workspace runs) |

mod annot;
mod callgraph;
mod lockgraph;
mod model;
mod rules;
mod scan;

pub use rules::{
    rule_family, BLOCKING_CRITICAL, DEPRECATED_API, DIRECT_FS_WRITE, LOCK_ORDER_CYCLE, NESTED_LOCK,
    NONDET_ITERATION, RELAXED_ORDERING, RULE_IDS, THREAD_SPAWN, UNSAFE_COMMENT, UNUSED_SUPPRESSION,
    WALL_CLOCK,
};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Meta rule: a suppression annotation that is itself invalid.
pub const MALFORMED_ALLOW: &str = "malformed-allow";

/// Workspace directories the lint walks (relative to the root).
pub const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Directory names skipped anywhere in the walk: build output, vendored
/// std-only crate stand-ins, and the lint's own deliberately-violating
/// fixture snippets.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// One rule violation at a file/line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (best-effort within the blanked line model).
    pub column: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Aggregate statistics for one lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Finding counts keyed by rule id (only rules that fired).
    pub findings_per_rule: BTreeMap<String, usize>,
    /// Well-formed suppression annotations seen.
    pub suppressions_total: usize,
    /// Annotations that matched at least one finding.
    pub suppressions_used: usize,
    /// Annotations that matched none (each also reported as
    /// `unused-suppression` in workspace runs).
    pub suppressions_unused: usize,
}

/// A full lint run: findings plus summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Aggregate statistics.
    pub summary: Summary,
}

/// Lint one source text as if it lived at `rel_path` (forward slashes,
/// relative to the workspace root — the path decides which rules apply).
/// Runs the per-file rules *and* the interprocedural passes over this one
/// file, but — unlike workspace runs — does not report unused suppressions
/// (a lone file legitimately lacks its cross-file finding sources).
/// Findings come back sorted by line, then rule.
pub fn lint_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let files = vec![(rel_path.to_string(), text.to_string())];
    let mut findings = run(&files, false).findings;
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Lint an explicit set of `(rel_path, text)` files as one workspace,
/// including the interprocedural passes and unused-suppression reporting.
pub fn lint_files(files: &[(String, String)]) -> Report {
    run(files, true)
}

/// Lint every `.rs` file under the workspace `root`'s [`SCAN_ROOTS`].
/// Findings come back sorted by `(file, line, rule)` — the lint is about
/// determinism, so its own output is deterministic too.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    for dir in SCAN_ROOTS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs_files(&path, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for file in &paths {
        let text = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, text));
    }
    Ok(run(&files, true))
}

/// The full pipeline: per-file rules, then the interprocedural passes, then
/// (for workspace runs) unused-suppression accounting.
fn run(files: &[(String, String)], report_unused: bool) -> Report {
    let mut scanned: Vec<(usize, Vec<scan::Line>)> = Vec::new(); // (file idx, lines)
    let mut order: Vec<usize> = (0..files.len()).collect();
    order.sort_by(|&a, &b| files[a].0.cmp(&files[b].0));
    for &i in &order {
        scanned.push((i, scan::scan(&files[i].1)));
    }

    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for (i, lines) in &scanned {
        let rel = &files[*i].0;
        let sup = annot::collect(rel, lines, rules::RULE_IDS);
        findings.extend(rules::check_file(rel, lines, &sup));
        sups.push(sup);
    }

    // Interprocedural passes over the library sources: two-phase model build
    // (guard-returning helpers first), call graph, lock graph.
    let modeled: Vec<(usize, &Vec<scan::Line>)> = scanned
        .iter()
        .filter(|(i, _)| model::in_model_scope(&files[*i].0))
        .map(|(i, l)| (*i, l))
        .collect();
    let mut fns = Vec::new();
    for (i, lines) in &modeled {
        fns.extend(model::file_models(&files[*i].0, lines, &[]));
    }
    let helpers = model::guard_helpers(&fns);
    let mut fns = Vec::new();
    for (i, lines) in &modeled {
        fns.extend(model::file_models(&files[*i].0, lines, &helpers));
    }
    let ws = callgraph::Workspace::new(fns);
    for f in lockgraph::analyze(&ws) {
        let allowed = scanned
            .iter()
            .position(|(i, _)| files[*i].0 == f.file)
            .is_some_and(|k| sups[k].allows(f.rule, f.line));
        if !allowed {
            findings.push(f);
        }
    }

    // Annotation meta-findings last: malformed always, unused only for
    // workspace runs — and only after every rule had its chance to match.
    let mut suppressions_total = 0;
    let mut suppressions_used = 0;
    for (k, (i, _)) in scanned.iter().enumerate() {
        let (total, used) = sups[k].counts();
        suppressions_total += total;
        suppressions_used += used;
        findings.append(&mut sups[k].findings);
        if report_unused {
            findings.extend(sups[k].unused_findings(&files[*i].0));
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut findings_per_rule: BTreeMap<String, usize> = BTreeMap::new();
    for f in &findings {
        *findings_per_rule.entry(f.rule.to_string()).or_insert(0) += 1;
    }
    Report {
        summary: Summary {
            findings_per_rule,
            suppressions_total,
            suppressions_used,
            suppressions_unused: suppressions_total - suppressions_used,
        },
        findings,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render a report the way a compiler would.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.column);
    }
    if report.findings.is_empty() {
        let _ = writeln!(
            out,
            "hyppo-lint: no violations ({} suppression{} in use)",
            report.summary.suppressions_used,
            if report.summary.suppressions_used == 1 { "" } else { "s" }
        );
    } else {
        let _ = writeln!(
            out,
            "hyppo-lint: {} violation{} (suppress a site with \
             `// hyppo-lint: allow(<rule>) <reason>` — the reason is mandatory)",
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Render a report as a single JSON object (machine output for CI).
///
/// Schema (version 2, pinned by `tests/json_golden.rs`):
///
/// ```text
/// {"tool":"hyppo-lint","version":2,
///  "findings":[{"rule","rule_family","file","line","column","message"}...],
///  "total":N,
///  "summary":{"findings_per_rule":{"<rule>":N,...},
///             "suppressions":{"total":N,"used":N,"unused":N}}}
/// ```
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"tool\":\"hyppo-lint\",\"version\":2,\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"rule_family\":\"{}\",\"file\":\"{}\",\"line\":{},\
             \"column\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(rules::rule_family(f.rule)),
            json_escape(&f.file),
            f.line,
            f.column,
            json_escape(&f.message)
        );
    }
    let _ = write!(out, "],\"total\":{}", report.findings.len());
    out.push_str(",\"summary\":{\"findings_per_rule\":{");
    for (i, (rule, n)) in report.summary.findings_per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(rule), n);
    }
    let _ = write!(
        out,
        "}},\"suppressions\":{{\"total\":{},\"used\":{},\"unused\":{}}}}}}}",
        report.summary.suppressions_total,
        report.summary.suppressions_used,
        report.summary.suppressions_unused
    );
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_of(findings: Vec<Finding>) -> Report {
        let mut findings_per_rule = BTreeMap::new();
        for f in &findings {
            *findings_per_rule.entry(f.rule.to_string()).or_insert(0) += 1;
        }
        Report {
            findings,
            summary: Summary {
                findings_per_rule,
                suppressions_total: 2,
                suppressions_used: 1,
                suppressions_unused: 1,
            },
        }
    }

    #[test]
    fn json_output_is_well_formed_for_tricky_messages() {
        let report = report_of(vec![Finding {
            rule: MALFORMED_ALLOW,
            file: "a/b.rs".into(),
            line: 3,
            column: 7,
            message: "quote \" backslash \\ newline \n done".into(),
        }]);
        let json = render_json(&report);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"version\":2"));
        assert!(json.contains("\"rule_family\":\"suppression\""));
        assert!(json.contains("\"column\":7"));
        assert!(json.contains("\"total\":1,\"summary\":{"));
        assert!(json.contains("\"suppressions\":{\"total\":2,\"used\":1,\"unused\":1}"));
    }

    #[test]
    fn clean_source_yields_no_findings() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_source("crates/core/src/optimizer/x.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_skip_scoped_rules_but_not_global_ones() {
        // Wall-clock is fine outside the planner; SearchOptions never is.
        let src = "fn f() { let t = Instant::now(); let o = SearchOptions::default(); }\n";
        let findings = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, DEPRECATED_API);
    }

    #[test]
    fn lint_source_does_not_report_unused_suppressions_but_lint_files_does() {
        let src = "fn f() {} // hyppo-lint: allow(wall-clock-in-planner) not actually needed\n";
        let rel = "crates/core/src/optimizer/x.rs";
        assert!(lint_source(rel, src).is_empty());
        let report = lint_files(&[(rel.to_string(), src.to_string())]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, UNUSED_SUPPRESSION);
        assert_eq!(report.summary.suppressions_total, 1);
        assert_eq!(report.summary.suppressions_unused, 1);
    }

    #[test]
    fn interprocedural_findings_honor_suppressions_and_mark_them_used() {
        let src = "\
impl S {
    fn f(&self) {
        let g = self.m.lock().unwrap();
        // hyppo-lint: allow(blocking-in-critical-section) intentional drain under guard
        self.file.sync_all().unwrap();
    }
}
";
        let rel = "crates/persist/src/x.rs";
        let report = lint_files(&[(rel.to_string(), src.to_string())]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.summary.suppressions_used, 1);
    }
}
