//! `hyppo-lint`: determinism & concurrency static analysis for the HYPPO
//! workspace.
//!
//! The repo's headline guarantee — *bit-identical plans and artifacts under
//! any thread count* — is a property one stray `HashMap` iteration,
//! wall-clock read, or unjustified `Ordering::Relaxed` silently destroys,
//! and one that `clippy` cannot check because the invariants are
//! HYPPO-specific. This crate is the program-level gate: a self-contained,
//! dependency-free pass over every `.rs` file under `src/`, `crates/`,
//! `tests/`, and `examples/` (vendored crates and lint fixtures excluded),
//! with per-site suppression via
//!
//! ```text
//! // hyppo-lint: allow(<rule>) <mandatory reason>
//! ```
//!
//! Rules (see `DESIGN.md` §10 for the invariant each protects):
//!
//! | rule | flags |
//! |------|-------|
//! | `nondeterministic-iteration` | `HashMap`/`HashSet` iteration in planner/runtime/hypergraph code |
//! | `wall-clock-in-planner` | `Instant::now`/`SystemTime::now` in plan-decision code |
//! | `relaxed-ordering-justified` | weak/RMW atomic orderings without a written justification |
//! | `unsafe-needs-safety-comment` | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `nested-lock-acquire` | a lock acquired while another guard is plausibly live |
//! | `no-deprecated-planner-api` | `SearchOptions` / free-function `optimize(` |
//! | `direct-fs-write-outside-persist` | raw filesystem mutation in durability-critical crates |
//! | `malformed-allow` | `allow(...)` without a reason, or naming an unknown rule |

mod annot;
mod rules;
mod scan;

pub use rules::{
    DEPRECATED_API, DIRECT_FS_WRITE, NESTED_LOCK, NONDET_ITERATION, RELAXED_ORDERING, RULE_IDS,
    UNSAFE_COMMENT, WALL_CLOCK,
};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Meta rule: a suppression annotation that is itself invalid.
pub const MALFORMED_ALLOW: &str = "malformed-allow";

/// Workspace directories the lint walks (relative to the root).
pub const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Directory names skipped anywhere in the walk: build output, vendored
/// std-only crate stand-ins, and the lint's own deliberately-violating
/// fixture snippets.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// One rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Lint one source text as if it lived at `rel_path` (forward slashes,
/// relative to the workspace root — the path decides which rules apply).
/// Findings come back sorted by line, then rule.
pub fn lint_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let lines = scan::scan(text);
    let mut sup = annot::collect(rel_path, &lines, rules::RULE_IDS);
    let mut findings = rules::check_file(rel_path, &lines, &sup);
    findings.append(&mut sup.findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Lint every `.rs` file under the workspace `root`'s [`SCAN_ROOTS`].
/// Findings come back sorted by `(file, line, rule)` — the lint is about
/// determinism, so its own output is deterministic too.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(lint_source(&rel, &text));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings the way a compiler would.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}", f.file, f.line);
    }
    if findings.is_empty() {
        out.push_str("hyppo-lint: no violations\n");
    } else {
        let _ = writeln!(
            out,
            "hyppo-lint: {} violation{} (suppress a site with \
             `// hyppo-lint: allow(<rule>) <reason>` — the reason is mandatory)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Render findings as a single JSON object (machine output for CI).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"tool\":\"hyppo-lint\",\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        );
    }
    let _ = write!(out, "],\"total\":{}}}", findings.len());
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed_for_tricky_messages() {
        let findings = vec![Finding {
            rule: MALFORMED_ALLOW,
            file: "a/b.rs".into(),
            line: 3,
            message: "quote \" backslash \\ newline \n done".into(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.ends_with("\"total\":1}\n"));
    }

    #[test]
    fn clean_source_yields_no_findings() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_source("crates/core/src/optimizer/x.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_skip_scoped_rules_but_not_global_ones() {
        // Wall-clock is fine outside the planner; SearchOptions never is.
        let src = "fn f() { let t = Instant::now(); let o = SearchOptions::default(); }\n";
        let findings = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, DEPRECATED_API);
    }
}
