//! `hyppo-lint` CLI.
//!
//! ```text
//! hyppo-lint [--json] [--root <path>]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.
//! Without `--root`, the workspace root is found by ascending from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("hyppo-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: hyppo-lint [--json] [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hyppo-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(discover_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "hyppo-lint: could not find a workspace root (no ancestor \
                 Cargo.toml with [workspace]); pass --root <path>"
            );
            return ExitCode::from(2);
        }
    };

    let report = match hyppo_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hyppo-lint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", hyppo_lint::render_json(&report));
    } else {
        print!("{}", hyppo_lint::render_human(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares a
/// `[workspace]` section.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if has_workspace_manifest(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn has_workspace_manifest(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
