//! The static lock-acquisition graph and the two interprocedural rules.
//!
//! Edges: `A → B` when some function acquires lock `B` (directly or through
//! any resolvable callee chain) while `A` is statically held. A cycle in
//! this graph is a potential deadlock — two threads entering the cycle at
//! different points can each hold the lock the other wants — and is
//! reported as `lock-order-cycle` with a full witness path per edge.
//!
//! `blocking-in-critical-section` fires wherever a known blocking operation
//! (fsync, `write_all`, `recv`, `join`, `Condvar::wait` on a *different*
//! lock, sleep) is reachable while any guard is held, anchored at the
//! statement in the guard-holding frame so a suppression there documents
//! the intent (the WAL drain inside `SharedHyppo::commit` being the
//! canonical justified site, DESIGN.md §14).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{reachability, Reach, Step, Workspace};
use crate::model::EventKind;
use crate::rules::{BLOCKING_CRITICAL, LOCK_ORDER_CYCLE};
use crate::Finding;

/// Witness for one lock-order edge `from → to`.
#[derive(Debug, Clone)]
struct EdgeWitness {
    /// Function whose frame holds `from` at the acquisition point.
    holder: String,
    /// Site of the acquisition (or of the call that reaches it).
    file: String,
    line: usize,
    col: usize,
    /// Call path from the holder to the acquiring frame (empty if direct).
    via: Vec<Step>,
}

/// Run both interprocedural rules; returns findings not yet filtered by
/// suppressions, sorted by `(file, line, rule)`.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let reach = reachability(ws);
    let mut findings = Vec::new();
    let edges = collect_edges(ws, &reach);
    findings.extend(cycle_findings(&edges));
    findings.extend(blocking_findings(ws, &reach));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// All lock-order edges with one deterministic witness each: first writer
/// wins, and functions/events are walked in deterministic order.
fn collect_edges(ws: &Workspace, reach: &[Reach]) -> BTreeMap<(String, String), EdgeWitness> {
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        for ev in &f.events {
            if ev.held.is_empty() {
                continue;
            }
            match &ev.kind {
                EventKind::Acquire { lock } => {
                    for held in &ev.held {
                        if held != lock {
                            edges.entry((held.clone(), lock.clone())).or_insert_with(|| {
                                EdgeWitness {
                                    holder: f.qualified(),
                                    file: f.file.clone(),
                                    line: ev.line,
                                    col: ev.col,
                                    via: Vec::new(),
                                }
                            });
                        }
                    }
                }
                EventKind::Call { name, recv } => {
                    for j in ws.resolve(i, name, recv) {
                        for (lock, w) in &reach[j].acquires {
                            for held in &ev.held {
                                if held == lock || ev.held.contains(lock) {
                                    continue;
                                }
                                edges.entry((held.clone(), lock.clone())).or_insert_with(|| {
                                    let mut via = vec![Step {
                                        callee: ws.fns[j].qualified(),
                                        file: f.file.clone(),
                                        line: ev.line,
                                    }];
                                    via.extend(w.path.iter().cloned());
                                    EdgeWitness {
                                        holder: f.qualified(),
                                        file: f.file.clone(),
                                        line: ev.line,
                                        col: ev.col,
                                        via,
                                    }
                                });
                            }
                        }
                    }
                }
                EventKind::Block { .. } => {}
            }
        }
    }
    edges
}

/// One `lock-order-cycle` finding per strongly connected component of the
/// edge graph, anchored at the witness of the component's smallest edge.
fn cycle_findings(edges: &BTreeMap<(String, String), EdgeWitness>) -> Vec<Finding> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        succ.entry(from).or_default().push(to);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in &nodes {
        if reported.contains(start) {
            continue;
        }
        let Some(cycle) = shortest_cycle(start, &succ) else { continue };
        // Report each component once, from its lexicographically smallest
        // member; skip if a smaller member will (or did) report it.
        if cycle.iter().any(|n| n.as_str() < start) || cycle.iter().any(|n| reported.contains(n)) {
            continue;
        }
        for n in &cycle {
            reported.insert(n.clone());
        }
        let mut desc = String::new();
        for win in cycle.windows(2) {
            let key = (win[0].clone(), win[1].clone());
            let w = &edges[&key];
            if !desc.is_empty() {
                desc.push_str("; ");
            }
            desc.push_str(&format!(
                "`{}` held while acquiring `{}` in `{}` at {}:{}{}",
                win[0],
                win[1],
                w.holder,
                w.file,
                w.line,
                render_via(&w.via)
            ));
        }
        let first = &edges[&(cycle[0].clone(), cycle[1].clone())];
        let ring = cycle.join(" -> ");
        findings.push(Finding {
            rule: LOCK_ORDER_CYCLE,
            file: first.file.clone(),
            line: first.line,
            column: first.col,
            message: format!(
                "lock-order cycle {ring}: {desc} — two threads entering this ring at \
                 different points can deadlock; impose a single acquisition order or \
                 annotate why the orders can never interleave"
            ),
        });
    }
    findings
}

/// Shortest cycle through `start`, as `[start, ..., start]`, via BFS over
/// the nodes reachable from `start` until an edge returns to it.
fn shortest_cycle(start: &str, succ: &BTreeMap<&str, Vec<&str>>) -> Option<Vec<String>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<&str> = std::collections::VecDeque::new();
    for &n in succ.get(start)? {
        if n == start {
            return Some(vec![start.to_string(), start.to_string()]);
        }
        if !parent.contains_key(n) {
            parent.insert(n, start);
            queue.push_back(n);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in succ.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
            if m == start {
                // Rebuild start -> ... -> n -> start by retracing parents.
                let mut rev = vec![start.to_string(), n.to_string()];
                let mut cur = n;
                while cur != start {
                    cur = parent[cur];
                    rev.push(cur.to_string());
                }
                rev.reverse();
                return Some(rev);
            }
            if !parent.contains_key(m) {
                parent.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// `blocking-in-critical-section`: direct blocking events under a guard,
/// plus calls under a guard whose callee may transitively block. One
/// finding per `(file, line)`.
fn blocking_findings(ws: &Workspace, reach: &[Reach]) -> Vec<Finding> {
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut findings = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        for ev in &f.events {
            if ev.held.is_empty() {
                continue;
            }
            let held = ev.held.join("`, `");
            match &ev.kind {
                EventKind::Block { what } => {
                    if seen.insert((f.file.clone(), ev.line)) {
                        findings.push(Finding {
                            rule: BLOCKING_CRITICAL,
                            file: f.file.clone(),
                            line: ev.line,
                            column: ev.col,
                            message: format!(
                                "blocking `{what}` in `{}` while holding `{held}` — a \
                                 blocked critical section stalls every waiter; move the \
                                 operation outside the guard or annotate why blocking \
                                 here is intended",
                                f.qualified()
                            ),
                        });
                    }
                }
                EventKind::Call { name, recv } => {
                    let mut witness: Option<(&str, String)> = None;
                    for j in ws.resolve(i, name, recv) {
                        if let Some(b) = &reach[j].block {
                            let mut via = vec![Step {
                                callee: ws.fns[j].qualified(),
                                file: f.file.clone(),
                                line: ev.line,
                            }];
                            via.extend(b.path.iter().cloned());
                            let chain = via
                                .iter()
                                .map(|s| format!("`{}`", s.callee))
                                .collect::<Vec<_>>()
                                .join(" -> ");
                            witness =
                                Some((b.what.as_str(), format!("{chain} ({}:{})", b.file, b.line)));
                            break; // deterministic: first resolved callee wins
                        }
                    }
                    if let Some((what, via)) = witness {
                        if seen.insert((f.file.clone(), ev.line)) {
                            findings.push(Finding {
                                rule: BLOCKING_CRITICAL,
                                file: f.file.clone(),
                                line: ev.line,
                                column: ev.col,
                                message: format!(
                                    "call in `{}` while holding `{held}` may reach blocking \
                                     `{what}` via {via} — move the call outside the guard or \
                                     annotate why blocking here is intended",
                                    f.qualified()
                                ),
                            });
                        }
                    }
                }
                EventKind::Acquire { .. } => {}
            }
        }
    }
    findings
}

fn render_via(via: &[Step]) -> String {
    if via.is_empty() {
        return String::new();
    }
    let chain = via
        .iter()
        .map(|s| format!("`{}` ({}:{})", s.callee, s.file, s.line))
        .collect::<Vec<_>>()
        .join(" -> ");
    format!(" via {chain}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{file_models, guard_helpers};
    use crate::scan::scan;

    fn run(src: &str) -> Vec<Finding> {
        let lines = scan(src);
        let first = file_models("crates/x/src/lib.rs", &lines, &[]);
        let helpers = guard_helpers(&first);
        let ws = Workspace::new(file_models("crates/x/src/lib.rs", &lines, &helpers));
        analyze(&ws)
    }

    #[test]
    fn two_lock_inversion_is_a_cycle() {
        let f = run("impl S {\n\
                 fn ab(&self) {\n\
                     let a = self.a.lock().unwrap();\n\
                     let b = self.b.lock().unwrap();\n\
                 }\n\
                 fn ba(&self) {\n\
                     let b = self.b.lock().unwrap();\n\
                     let a = self.a.lock().unwrap();\n\
                 }\n\
             }\n");
        let cycles: Vec<&Finding> = f.iter().filter(|x| x.rule == LOCK_ORDER_CYCLE).collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(cycles[0].message.contains("S::a"));
        assert!(cycles[0].message.contains("S::b"));
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let f = run("impl S {\n\
                 fn ab(&self) {\n\
                     let a = self.a.lock().unwrap();\n\
                     let b = self.b.lock().unwrap();\n\
                 }\n\
                 fn also_ab(&self) {\n\
                     let a = self.a.lock().unwrap();\n\
                     let b = self.b.lock().unwrap();\n\
                 }\n\
             }\n");
        assert!(f.iter().all(|x| x.rule != LOCK_ORDER_CYCLE), "{f:?}");
    }

    #[test]
    fn cycle_through_a_callee_is_found_with_a_via_path() {
        let f = run("impl S {\n\
                 fn ab(&self) {\n\
                     let a = self.a.lock().unwrap();\n\
                     self.take_b();\n\
                 }\n\
                 fn take_b(&self) {\n\
                     let b = self.b.lock().unwrap();\n\
                 }\n\
                 fn ba(&self) {\n\
                     let b = self.b.lock().unwrap();\n\
                     let a = self.a.lock().unwrap();\n\
                 }\n\
             }\n");
        let cycle = f.iter().find(|x| x.rule == LOCK_ORDER_CYCLE).expect("cycle");
        assert!(cycle.message.contains("via `S::take_b`"), "{}", cycle.message);
    }

    #[test]
    fn blocking_under_guard_direct_and_via_callee() {
        let f = run("impl S {\n\
                 fn direct(&self) {\n\
                     let g = self.m.lock().unwrap();\n\
                     self.file.sync_all().unwrap();\n\
                 }\n\
                 fn indirect(&self) {\n\
                     let g = self.m.lock().unwrap();\n\
                     self.flush();\n\
                 }\n\
                 fn flush(&self) {\n\
                     self.file.sync_all().unwrap();\n\
                 }\n\
             }\n");
        let blocks: Vec<usize> =
            f.iter().filter(|x| x.rule == BLOCKING_CRITICAL).map(|x| x.line).collect();
        assert_eq!(blocks, vec![4, 8], "{f:?}");
        let via = f.iter().find(|x| x.line == 8).unwrap();
        assert!(via.message.contains("`S::flush`"), "{}", via.message);
    }

    #[test]
    fn condvar_wait_on_own_lock_is_not_flagged() {
        let f = run("impl S {\n\
                 fn waiter(&self) {\n\
                     let mut st = self.state.lock().unwrap();\n\
                     st = self.cv.wait(st).unwrap();\n\
                 }\n\
             }\n");
        assert!(f.iter().all(|x| x.rule != BLOCKING_CRITICAL), "{f:?}");
    }

    #[test]
    fn condvar_wait_under_a_second_lock_is_flagged() {
        let f = run("impl S {\n\
                 fn waiter(&self) {\n\
                     let outer = self.other.lock().unwrap();\n\
                     let mut st = self.state.lock().unwrap();\n\
                     st = self.cv.wait(st).unwrap();\n\
                 }\n\
             }\n");
        assert!(f.iter().any(|x| x.rule == BLOCKING_CRITICAL), "{f:?}");
    }
}
