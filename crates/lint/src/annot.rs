//! Per-site suppression annotations.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! hyppo-lint: allow(<rule>[, <rule>...]) <reason>
//! ```
//!
//! The reason is **mandatory** — an allow without one is itself a violation
//! (`malformed-allow`), as is an unknown rule name. A trailing annotation
//! (code and comment on the same line) suppresses its own line; a standalone
//! comment line suppresses the *next statement* (heuristically: from the
//! next code line through balanced parentheses to the statement end), which
//! covers multi-line calls with one annotation.
//!
//! Every well-formed annotation also tracks whether it ever matched a
//! finding: a workspace run reports the ones that did not as
//! `unused-suppression`, so stale annotations cannot silently accumulate
//! and mask future regressions. `unused-suppression` is deliberately not
//! itself suppressible — a stale annotation is deleted, not allowed.

use std::cell::Cell;

use crate::rules::UNUSED_SUPPRESSION;
use crate::scan::Line;
use crate::{Finding, MALFORMED_ALLOW};

/// One well-formed `allow(...)` annotation.
#[derive(Debug)]
struct Annot {
    /// Rules this annotation suppresses.
    rules: Vec<String>,
    /// Covered lines, 1-based inclusive.
    first: usize,
    last: usize,
    /// The annotation's own line (for `unused-suppression` reports).
    line: usize,
    /// Whether any finding matched this annotation.
    used: Cell<bool>,
}

/// Suppressions for one file, plus any findings the annotations themselves
/// produced.
#[derive(Debug, Default)]
pub struct Suppressions {
    annots: Vec<Annot>,
    /// Malformed-annotation findings (missing reason, unknown rule).
    pub findings: Vec<Finding>,
}

impl Suppressions {
    /// Whether `rule` is suppressed at `line` (1-based). Every matching
    /// annotation is marked used.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        let mut hit = false;
        for a in &self.annots {
            if line >= a.first && line <= a.last && a.rules.iter().any(|r| r == rule) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// `(total, used)` annotation counts.
    pub fn counts(&self) -> (usize, usize) {
        let used = self.annots.iter().filter(|a| a.used.get()).count();
        (self.annots.len(), used)
    }

    /// One `unused-suppression` finding per annotation no finding matched.
    pub fn unused_findings(&self, rel_path: &str) -> Vec<Finding> {
        self.annots
            .iter()
            .filter(|a| !a.used.get())
            .map(|a| Finding {
                rule: UNUSED_SUPPRESSION,
                file: rel_path.to_string(),
                line: a.line,
                column: 1,
                message: format!(
                    "suppression `allow({})` matched no finding — stale annotations mask \
                     future regressions; delete it (or fix the rule name/placement)",
                    a.rules.join(", ")
                ),
            })
            .collect()
    }
}

/// Parse every annotation in `lines` (1-based line numbers in findings).
pub fn collect(rel_path: &str, lines: &[Line], known_rules: &[&str]) -> Suppressions {
    let mut sup = Suppressions::default();
    for (idx, line) in lines.iter().enumerate() {
        // Doc comments (`///`, `//!`, `/** */`) document the grammar; only
        // plain comments carry live suppressions.
        let doc = matches!(line.comment.trim_start().chars().next(), Some('/' | '!' | '*'));
        if doc {
            continue;
        }
        let Some(at) = line.comment.find("hyppo-lint:") else { continue };
        let lineno = idx + 1;
        let rest = line.comment[at + "hyppo-lint:".len()..].trim_start();
        match parse_allow(rest) {
            Err(why) => sup.findings.push(Finding {
                rule: MALFORMED_ALLOW,
                file: rel_path.to_string(),
                line: lineno,
                column: 1,
                message: format!("malformed suppression annotation: {why}"),
            }),
            Ok((rules, _reason)) => {
                let mut ok = true;
                for rule in &rules {
                    if !known_rules.contains(&rule.as_str()) {
                        sup.findings.push(Finding {
                            rule: MALFORMED_ALLOW,
                            file: rel_path.to_string(),
                            line: lineno,
                            column: 1,
                            message: format!("allow() names unknown rule `{rule}`"),
                        });
                        ok = false;
                    }
                }
                if !ok {
                    continue;
                }
                let span = if line.code.trim().is_empty() {
                    statement_span(lines, idx + 1)
                } else {
                    lineno..=lineno
                };
                sup.annots.push(Annot {
                    rules,
                    first: *span.start(),
                    last: *span.end(),
                    line: lineno,
                    used: Cell::new(false),
                });
            }
        }
    }
    sup
}

/// Parse `allow(<rules>) <reason>`; the reason must be non-empty.
fn parse_allow(text: &str) -> Result<(Vec<String>, String), &'static str> {
    let body = text.strip_prefix("allow").ok_or("expected `allow(<rule>) <reason>`")?;
    let body = body.trim_start();
    let body = body.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let close = body.find(')').ok_or("unclosed `allow(`")?;
    let rules: Vec<String> =
        body[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow() lists no rules");
    }
    let reason = body[close + 1..].trim();
    if reason.is_empty() {
        return Err("a reason is mandatory after allow(...)");
    }
    Ok((rules, reason.to_string()))
}

/// The statement starting at the first code line at or after `from`
/// (0-based), extended through balanced parentheses/brackets. Returns
/// 1-based inclusive line numbers, capped at 30 lines.
fn statement_span(lines: &[Line], from: usize) -> std::ops::RangeInclusive<usize> {
    let mut start = from;
    while start < lines.len() && lines[start].code.trim().is_empty() {
        start += 1;
    }
    if start >= lines.len() {
        return from + 1..=from + 1;
    }
    let mut depth: i32 = 0;
    let mut end = start;
    for (off, line) in lines[start..].iter().take(30).enumerate() {
        end = start + off;
        let code = &line.code;
        for c in code.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 && code.contains([';', ')', '{', '}']) {
            break;
        }
        if depth <= 0 && !code.trim().is_empty() && off > 0 {
            break;
        }
    }
    start + 1..=end + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    const RULES: &[&str] = &["rule-a", "rule-b"];

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let lines = scan("do_it(); // hyppo-lint: allow(rule-a) because reasons\n");
        let sup = collect("f.rs", &lines, RULES);
        assert!(sup.findings.is_empty());
        assert!(sup.allows("rule-a", 1));
        assert!(!sup.allows("rule-b", 1));
    }

    #[test]
    fn standalone_annotation_covers_the_next_statement() {
        let src = "\
// hyppo-lint: allow(rule-a) spans the whole call
foo(
    bar,
    baz,
);
next();
";
        let lines = scan(src);
        let sup = collect("f.rs", &lines, RULES);
        assert!(sup.findings.is_empty());
        for l in 2..=5 {
            assert!(sup.allows("rule-a", l), "line {l}");
        }
        assert!(!sup.allows("rule-a", 6));
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let lines = scan("x(); // hyppo-lint: allow(rule-a)\n");
        let sup = collect("f.rs", &lines, RULES);
        assert_eq!(sup.findings.len(), 1);
        assert_eq!(sup.findings[0].rule, MALFORMED_ALLOW);
        assert!(!sup.allows("rule-a", 1));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let lines = scan("x(); // hyppo-lint: allow(nope) some reason\n");
        let sup = collect("f.rs", &lines, RULES);
        assert_eq!(sup.findings.len(), 1);
        assert!(sup.findings[0].message.contains("nope"));
    }

    #[test]
    fn doc_comments_are_not_parsed_as_annotations() {
        let lines = scan("//! hyppo-lint: allow(<rule>) grammar example\nx();\n");
        let sup = collect("f.rs", &lines, RULES);
        assert!(sup.findings.is_empty());
        assert!(!sup.allows("rule-a", 2));
    }

    #[test]
    fn multiple_rules_share_one_annotation() {
        let lines = scan("x(); // hyppo-lint: allow(rule-a, rule-b) shared reason\n");
        let sup = collect("f.rs", &lines, RULES);
        assert!(sup.allows("rule-a", 1) && sup.allows("rule-b", 1));
    }

    #[test]
    fn unmatched_annotations_are_reported_as_unused() {
        let lines = scan("x(); // hyppo-lint: allow(rule-a) looked needed once\ny();\n");
        let sup = collect("f.rs", &lines, RULES);
        assert_eq!(sup.counts(), (1, 0));
        let unused = sup.unused_findings("f.rs");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, UNUSED_SUPPRESSION);
        assert_eq!(unused[0].line, 1);
        // Once a finding matches, the annotation is used.
        assert!(sup.allows("rule-a", 1));
        assert_eq!(sup.counts(), (1, 1));
        assert!(sup.unused_findings("f.rs").is_empty());
    }

    #[test]
    fn malformed_annotations_are_not_tracked_as_unused() {
        let lines = scan("x(); // hyppo-lint: allow(rule-a)\n");
        let sup = collect("f.rs", &lines, RULES);
        assert_eq!(sup.counts(), (0, 0));
        assert!(sup.unused_findings("f.rs").is_empty());
    }
}
