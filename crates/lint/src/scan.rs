//! A comment- and string-literal-aware line model of a Rust source file.
//!
//! The scanner is not a parser: it walks the character stream once, tracking
//! just enough lexical state (line comments, nested block comments, string /
//! raw-string / char literals) to split every line into
//!
//! - `code` — the line's source text with comment text removed and literal
//!   *contents* blanked to spaces (delimiters are kept), so rule patterns
//!   never match inside a comment or a string, and
//! - `comment` — the comment text carried by the line, which is where
//!   suppression annotations (`hyppo-lint: allow(...)`) and `SAFETY:`
//!   comments live.
//!
//! Blanking (rather than deleting) literal contents keeps brace/paren
//! counting over `code` meaningful for the textual scope heuristics.

/// One source line, split into rule-visible code and comment text.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text on this line (line comments and block-comment parts).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments: Rust allows `/* /* */ */`.
    BlockComment(u32),
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(u32),
}

/// Split `text` into [`Line`]s. Infallible: unterminated literals or
/// comments simply run to end of file in their current state.
pub fn scan(text: &str) -> Vec<Line> {
    let cs: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;

    let at = |j: usize| cs.get(j).copied().unwrap_or('\0');

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && at(i + 1) == '/' {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && at(i + 1) == '*' {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some((prefix_len, hashes)) = raw_string_start(&cs, i) {
                    for k in 0..prefix_len {
                        line.code.push(cs[i + k]);
                    }
                    state = State::RawStr(hashes);
                    i += prefix_len;
                } else if c == '\'' {
                    i = consume_char_or_lifetime(&cs, i, &mut line.code);
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && at(i + 1) == '/' {
                    state = if depth > 1 { State::BlockComment(depth - 1) } else { State::Code };
                    i += 2;
                } else if c == '/' && at(i + 1) == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if at(i + 1) != '\n' {
                        line.code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && (0..hashes as usize).all(|k| at(i + 1 + k) == '#') {
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// `r"`, `r#"`, `br"`, `b"`-free raw-string opener at `i`: returns
/// `(prefix length up to and including the quote, hash count)`.
fn raw_string_start(cs: &[char], i: usize) -> Option<(usize, u32)> {
    // Must not be the tail of an identifier (`var"` cannot occur, but `xr`
    // followed by `#` could in macros — be conservative).
    if i > 0 && is_word_char(cs[i - 1]) {
        return None;
    }
    let mut j = i;
    if cs[j] == 'b' && cs.get(j + 1) == Some(&'r') {
        j += 2;
    } else if cs[j] == 'r' {
        j += 1;
    } else {
        return None;
    }
    let mut hashes = 0u32;
    while cs.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if cs.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// At a `'`: either a char literal (contents blanked) or a lifetime (kept).
/// Returns the index after whatever was consumed.
fn consume_char_or_lifetime(cs: &[char], i: usize, code: &mut String) -> usize {
    let next = cs.get(i + 1).copied().unwrap_or('\0');
    let is_char_lit = next == '\\' || cs.get(i + 2) == Some(&'\'');
    if !is_char_lit {
        code.push('\'');
        return i + 1;
    }
    code.push('\'');
    let mut j = i + 1;
    while j < cs.len() && cs[j] != '\n' {
        if cs[j] == '\\' {
            code.push(' ');
            code.push(' ');
            j += 2;
            continue;
        }
        if cs[j] == '\'' {
            code.push('\'');
            return j + 1;
        }
        code.push(' ');
        j += 1;
    }
    j
}

/// Identifier character (`_`, letters, digits).
pub fn is_word_char(c: char) -> bool {
    c == '_' || c.is_ascii_alphanumeric()
}

/// Byte offsets of `word` in `code` with identifier boundaries on both
/// sides. `word` must itself be identifier-shaped.
pub fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_word_char(code[..pos].chars().next_back().unwrap_or(' '));
        let after = code[pos + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_word_char(after) {
            out.push(pos);
        }
        from = pos + word.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let lines = scan("let x = 1; // HashMap here\n/* SystemTime::now */ let y = 2;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("SystemTime"));
        assert!(lines[1].code.contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_kept() {
        let lines = scan("let s = \"optimize( unsafe { }\";\n");
        assert!(!lines[0].code.contains("optimize"));
        assert!(!lines[0].code.contains('{'));
        assert_eq!(lines[0].code.matches('"').count(), 2);
    }

    #[test]
    fn raw_strings_and_bytes_are_blanked() {
        let lines = scan("let s = r#\"SearchOptions \"quoted\"\"#; let b = b\"unsafe\";\n");
        assert!(!lines[0].code.contains("SearchOptions"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let b ="));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = scan("/* a /* b */ c */ let z = 3;\n");
        assert!(lines[0].code.contains("let z = 3;"));
        assert!(lines[0].comment.contains('b'));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let lines = scan("let s = \"first\nHashMap second\";\nlet t = 1;\n");
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[2].code.contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }\n");
        assert!(lines[0].code.contains("<'a>"));
        // The brace inside the char literal must not unbalance the line.
        let opens = lines[0].code.matches('{').count();
        let closes = lines[0].code.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        assert_eq!(word_occurrences("unsafe_fn unsafe x_unsafe", "unsafe").len(), 1);
        assert_eq!(word_occurrences("Relaxed, AtomicOrder::Relaxed", "Relaxed").len(), 2);
    }
}
